#include "server/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <system_error>
#include <thread>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "util/posix_io.h"

namespace spire::server {

namespace {

using Clock = std::chrono::steady_clock;

// std::strerror is not thread-safe (concurrency-mt-unsafe); error_code
// formats the same message without shared state.
std::string errno_text() {
  return std::error_code(errno, std::generic_category()).message();
}

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<long long>(left.count(), 0));
}

}  // namespace

#if defined(_WIN32)

Client::Client(ClientOptions options)
    : options_(std::move(options)), chaos_(options_.chaos, 0),
      backoff_rng_(options_.backoff.seed) {
  throw std::runtime_error("client: POSIX sockets are required");
}
Client::~Client() = default;
EstimateReply Client::estimate(EstimateRequest) { return {}; }
EstimateReply Client::estimate_bin(EstimateBinRequest) { return {}; }
EstimateReply Client::estimate_loop(
    FrameType, FrameType, std::uint32_t,
    const std::function<std::string(std::uint32_t)>&, const char*) {
  return {};
}
std::size_t Client::pipeline(const std::vector<PipelineRequest>&,
                             std::vector<PipelineResult>* results,
                             std::size_t) {
  if (results) results->clear();
  return 0;
}
bool Client::write_frame_chaos(const std::string&, bool, std::string*) {
  return false;
}
void Client::ping() {}
SwapReply Client::swap(const std::string&) { return {}; }
StatsReply Client::stats() { return {}; }
ShardsReply Client::shards() { return {}; }
bool Client::raw_roundtrip(FrameType, const std::string&, FrameHeader*,
                           std::string*, std::string*) { return false; }
void Client::disconnect() {}
bool Client::ensure_connected(std::string*) { return false; }
std::string Client::exchange(FrameType, FrameType, const std::string&, int,
                             const std::string&) { return {}; }
void Client::sleep_backoff(int) {}

#else

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      // Stream 0 for the client's chaos draws; server connections use
      // their connection ids, so the streams never collide.
      chaos_(options_.chaos, 0),
      backoff_rng_(util::derive_seed(options_.backoff.seed, 0x636c69)) {
  util::ignore_sigpipe();
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    util::close_quietly(fd_);
    fd_ = -1;
  }
}

bool Client::ensure_connected(std::string* error) {
  if (fd_ >= 0) return true;
  if (options_.socket_path.empty()) {
    if (error) *error = "no socket path configured";
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = errno_text();
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    util::close_quietly(fd);
    if (error) *error = "socket path too long";
    return false;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string why = errno_text();
    util::close_quietly(fd);
    if (error) *error = "connect " + options_.socket_path + ": " + why;
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::write_frame_chaos(const std::string& frame, bool keep_open,
                               std::string* error) {
  // Chaos: tear the outbound frame. The server must answer a torn frame
  // with silence + close, never a crash — and this side must not hang.
  if (chaos_.tear_frame()) {
    const std::size_t cut = chaos_.tear_point(frame.size());
    (void)util::write_all_deadline(fd_, frame.data(), cut,
                                   options_.io_timeout_ms);
    // The close is what makes the tear visible server-side; a pipelining
    // caller keeps the fd open to drain replies it is still owed, then
    // closes itself.
    if (!keep_open) disconnect();
    if (error) *error = "chaos: tore outbound frame";
    return false;
  }
  util::IoStatus st;
  if (chaos_.stall_mid_write() && frame.size() > kFrameHeaderBytes) {
    st = util::write_all_deadline(fd_, frame.data(), kFrameHeaderBytes,
                                  options_.io_timeout_ms);
    if (st == util::IoStatus::kOk) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.chaos.stall_ms));
      st = util::write_all_deadline(fd_, frame.data() + kFrameHeaderBytes,
                                    frame.size() - kFrameHeaderBytes,
                                    options_.io_timeout_ms);
    }
  } else {
    st = util::write_all_deadline(fd_, frame.data(), frame.size(),
                                  options_.io_timeout_ms);
  }
  if (st != util::IoStatus::kOk) {
    disconnect();
    if (error) *error = std::string("write: ") + util::io_status_name(st);
    return false;
  }
  return true;
}

bool Client::raw_roundtrip(FrameType type, const std::string& payload,
                           FrameHeader* reply_header,
                           std::string* reply_payload, std::string* error) {
  if (!ensure_connected(error)) return false;
  const std::uint64_t seq = next_seq_++;
  std::string frame;
  try {
    frame = encode_frame(type, seq, payload, options_.limits);
  } catch (const ProtocolError& e) {
    if (error) *error = e.what();
    return false;
  }
  if (!write_frame_chaos(frame, /*keep_open=*/false, error)) return false;
  unsigned char header_bytes[kFrameHeaderBytes];
  util::IoStatus st = util::read_exact(fd_, header_bytes, sizeof header_bytes,
                                       options_.io_timeout_ms);
  if (st != util::IoStatus::kOk) {
    disconnect();
    if (error) *error = std::string("read header: ") + util::io_status_name(st);
    return false;
  }
  FrameHeader header;
  try {
    header = decode_header(header_bytes, options_.limits);
  } catch (const ProtocolError& e) {
    disconnect();
    if (error) *error = std::string("reply header: ") + e.what();
    return false;
  }
  std::string body(header.payload_len, '\0');
  if (header.payload_len > 0) {
    st = util::read_exact(fd_, body.data(), body.size(),
                          options_.io_timeout_ms);
    if (st != util::IoStatus::kOk) {
      disconnect();
      if (error) {
        *error = std::string("read payload: ") + util::io_status_name(st);
      }
      return false;
    }
  }
  if (header.seq != seq) {
    // The stream is out of sync; nothing on this connection is trustable.
    disconnect();
    if (error) *error = "reply seq mismatch";
    return false;
  }
  if (reply_header) *reply_header = header;
  if (reply_payload) *reply_payload = std::move(body);
  return true;
}

std::size_t Client::pipeline(const std::vector<PipelineRequest>& requests,
                             std::vector<PipelineResult>* results,
                             std::size_t window) {
  std::vector<PipelineResult>& out = *results;
  out.assign(requests.size(), PipelineResult{});
  std::string error;
  if (!ensure_connected(&error)) {
    for (PipelineResult& r : out) r.error = error;
    return 0;
  }
  // seq -> request index of every frame written in full but not yet
  // answered. The server replies in completion order, not send order.
  std::map<std::uint64_t, std::size_t> outstanding;
  std::size_t sent = 0;       // requests fully written
  std::size_t replied = 0;    // ok results
  bool send_dead = false;     // tear/write fault: stop sending, keep reading
  const auto fail_outstanding = [&](const std::string& why) {
    for (const auto& [seq, index] : outstanding) {
      out[index].error = why;
    }
    outstanding.clear();
  };
  while (sent < requests.size() || !outstanding.empty()) {
    // Fill the window before blocking on a reply; with window == 0 the
    // whole batch goes out back-to-back first.
    while (!send_dead && sent < requests.size() &&
           (window == 0 || outstanding.size() < window)) {
      const std::size_t i = sent++;
      const std::uint64_t seq = next_seq_++;
      out[i].seq = seq;
      std::string frame;
      try {
        frame = encode_frame(requests[i].type, seq, requests[i].payload,
                             options_.limits);
      } catch (const ProtocolError& e) {
        out[i].error = e.what();
        continue;  // this frame never hit the wire; the stream is intact
      }
      if (!write_frame_chaos(frame, /*keep_open=*/true, &out[i].error)) {
        // A torn or failed frame poisons everything NOT yet sent, but the
        // replies owed to fully-sent frames are still drained below.
        send_dead = true;
        for (std::size_t j = sent; j < requests.size(); ++j) {
          out[j].error = "not sent: connection torn by an earlier frame";
        }
        sent = requests.size();
        break;
      }
      outstanding.emplace(seq, i);
    }
    if (outstanding.empty()) break;
    if (fd_ < 0) {
      // write_frame_chaos closed the fd on a hard fault: nothing further
      // can be read, the outstanding replies are lost.
      fail_outstanding("connection lost before reply");
      break;
    }
    unsigned char header_bytes[kFrameHeaderBytes];
    util::IoStatus st = util::read_exact(fd_, header_bytes,
                                         sizeof header_bytes,
                                         options_.io_timeout_ms);
    if (st != util::IoStatus::kOk) {
      fail_outstanding(std::string("read header: ") +
                       util::io_status_name(st));
      disconnect();
      break;
    }
    FrameHeader header;
    try {
      header = decode_header(header_bytes, options_.limits);
    } catch (const ProtocolError& e) {
      fail_outstanding(std::string("reply header: ") + e.what());
      disconnect();
      break;
    }
    std::string body(header.payload_len, '\0');
    if (header.payload_len > 0) {
      st = util::read_exact(fd_, body.data(), body.size(),
                            options_.io_timeout_ms);
      if (st != util::IoStatus::kOk) {
        fail_outstanding(std::string("read payload: ") +
                         util::io_status_name(st));
        disconnect();
        break;
      }
    }
    const auto it = outstanding.find(header.seq);
    if (it == outstanding.end()) {
      // A reply for a seq we never sent (or already settled): desync.
      fail_outstanding("reply seq mismatch");
      disconnect();
      break;
    }
    PipelineResult& r = out[it->second];
    outstanding.erase(it);
    r.ok = true;
    r.header = header;
    r.payload = std::move(body);
    ++replied;
  }
  // A tear left a half-written frame on the stream; the connection is
  // unusable for anything further.
  if (send_dead) disconnect();
  return replied;
}

void Client::sleep_backoff(int completed_attempts) {
  const BackoffOptions& b = options_.backoff;
  double delay = static_cast<double>(b.base_ms);
  for (int i = 1; i < completed_attempts; ++i) delay *= b.multiplier;
  const double jitter = std::clamp(b.jitter, 0.0, 1.0);
  if (jitter > 0) delay *= backoff_rng_.uniform(1.0 - jitter, 1.0 + jitter);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long long>(delay)));
}

std::string Client::exchange(FrameType request_type, FrameType expected_reply,
                             const std::string& payload, int deadline_ms,
                             const std::string& what) {
  const bool has_deadline = deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  const int attempts = std::max(options_.backoff.max_attempts, 1);
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      sleep_backoff(attempt);
    }
    if (has_deadline && remaining_ms(deadline) <= 0) {
      throw ServerUnavailable(what + ": deadline exhausted after " +
                              std::to_string(attempt) +
                              " attempt(s); last error: " + last_error);
    }
    FrameHeader header;
    std::string body;
    if (!raw_roundtrip(request_type, payload, &header, &body, &last_error)) {
      continue;  // transport fault: reconnect and retry
    }
    if (header.type == expected_reply) return body;
    if (header.type == FrameType::kErrorReply) {
      ErrorReply err;
      try {
        err = decode_error_reply(body, options_.limits);
      } catch (const ProtocolError& e) {
        last_error = std::string("undecodable error reply: ") + e.what();
        disconnect();
        continue;
      }
      // Shedding and draining are the server asking us to come back;
      // everything else is a deterministic failure retries cannot fix.
      if (err.code == ErrorCode::kOverloaded ||
          err.code == ErrorCode::kShuttingDown) {
        last_error = std::string(error_code_name(err.code)) + ": " +
                     err.message;
        continue;
      }
      throw ServerError(err.code, what + ": " +
                                      error_code_name(err.code) + ": " +
                                      err.message);
    }
    last_error = "unexpected reply type " +
                 std::to_string(static_cast<unsigned>(header.type));
    disconnect();
  }
  throw ServerUnavailable(what + ": no reply after " +
                          std::to_string(attempts) +
                          " attempt(s); last error: " + last_error);
}

EstimateReply Client::estimate_loop(
    FrameType request_type, FrameType expected_reply,
    std::uint32_t budget_ms,
    const std::function<std::string(std::uint32_t)>& encode,
    const char* what) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(budget_ms);
  const int attempts = std::max(options_.backoff.max_attempts, 1);
  std::string last_error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) sleep_backoff(attempt);
    std::uint32_t send_deadline_ms = budget_ms;
    if (budget_ms > 0) {
      // Deadline propagation: the server sees only what is left of the
      // caller's budget, so retries shrink the window instead of
      // restarting it.
      const int left = remaining_ms(deadline);
      if (left <= 0) {
        throw ServerUnavailable(std::string(what) +
                                ": deadline exhausted after " +
                                std::to_string(attempt) +
                                " attempt(s); last error: " + last_error);
      }
      send_deadline_ms = static_cast<std::uint32_t>(left);
    }
    const std::string payload = encode(send_deadline_ms);
    FrameHeader header;
    std::string body;
    if (!raw_roundtrip(request_type, payload, &header, &body, &last_error)) {
      continue;
    }
    if (header.type == expected_reply) {
      return decode_estimate_reply(body, options_.limits);
    }
    if (header.type == FrameType::kErrorReply) {
      ErrorReply err;
      try {
        err = decode_error_reply(body, options_.limits);
      } catch (const ProtocolError& e) {
        last_error = std::string("undecodable error reply: ") + e.what();
        disconnect();
        continue;
      }
      if (err.code == ErrorCode::kOverloaded ||
          err.code == ErrorCode::kShuttingDown) {
        last_error = std::string(error_code_name(err.code)) + ": " +
                     err.message;
        continue;
      }
      throw ServerError(err.code, std::string(what) + ": " +
                                      error_code_name(err.code) + ": " +
                                      err.message);
    }
    last_error = "unexpected reply type " +
                 std::to_string(static_cast<unsigned>(header.type));
    disconnect();
  }
  throw ServerUnavailable(std::string(what) + ": no reply after " +
                          std::to_string(attempts) +
                          " attempt(s); last error: " + last_error);
}

EstimateReply Client::estimate(EstimateRequest request) {
  return estimate_loop(
      FrameType::kEstimateRequest, FrameType::kEstimateReply,
      request.deadline_ms,
      [&](std::uint32_t deadline_ms) {
        request.deadline_ms = deadline_ms;
        return encode_estimate_request(request, options_.limits);
      },
      "estimate");
}

EstimateReply Client::estimate_bin(EstimateBinRequest request) {
  return estimate_loop(
      FrameType::kEstimateBinRequest, FrameType::kEstimateBinReply,
      request.deadline_ms,
      [&](std::uint32_t deadline_ms) {
        request.deadline_ms = deadline_ms;
        return encode_estimate_bin_request(request, options_.limits);
      },
      "estimate-bin");
}

void Client::ping() {
  (void)exchange(FrameType::kPingRequest, FrameType::kPingReply, "", 0,
                 "ping");
}

SwapReply Client::swap(const std::string& model_class) {
  SwapRequest request;
  request.model_class = model_class;
  const std::string body =
      exchange(FrameType::kSwapRequest, FrameType::kSwapReply,
               encode_swap_request(request, options_.limits), 0, "swap");
  return decode_swap_reply(body, options_.limits);
}

StatsReply Client::stats() {
  const std::string body = exchange(FrameType::kStatsRequest,
                                    FrameType::kStatsReply, "", 0, "stats");
  return decode_stats_reply(body, options_.limits);
}

ShardsReply Client::shards() {
  const std::string body = exchange(FrameType::kShardsRequest,
                                    FrameType::kShardsReply, "", 0, "shards");
  return decode_shards_reply(body, options_.limits);
}

#endif  // !_WIN32

}  // namespace spire::server
