#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <tuple>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "counters/events.h"
#include "serve/model_eval.h"
#include "serve/profile_bin.h"
#include "util/posix_io.h"

namespace spire::server {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("server: " + what);
}

// std::strerror is not thread-safe (concurrency-mt-unsafe); error_code
// formats the same message from a static table without shared state.
std::string errno_text() {
  return std::error_code(errno, std::generic_category()).message();
}

std::chrono::milliseconds ms(long long count) {
  return std::chrono::milliseconds(count);
}

std::string bounded_message(const std::string& message, std::size_t max) {
  if (message.size() <= max) return message;
  return message.substr(0, max);
}

#if !defined(_WIN32)
// Self-pipe write end for the async-signal-safe shutdown handler. One
// server per process may own the handlers at a time.
std::atomic<int> g_signal_pipe{-1};

extern "C" void spire_forward_shutdown_signal(int) {
  const int fd = g_signal_pipe.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe just means a shutdown request is already pending.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}
#endif

}  // namespace

/// One peer. The fds are closed by the LAST holder of the shared_ptr, so a
/// shard pump can still write its reply after the reader thread exited.
struct EstimationServer::Connection {
  Connection(int in, int out, bool owns, std::uint64_t cid,
             const ChaosOptions& chaos_options)
      : in_fd(in), out_fd(out), owns_fds(owns), id(cid),
        chaos(chaos_options, cid) {}
  ~Connection() {
    if (owns_fds) {
      util::close_quietly(in_fd);
      if (out_fd != in_fd) util::close_quietly(out_fd);
    }
  }

  /// Buffer pool: a handful of strings whose heap capacity is recycled
  /// between frame reads and reply payloads, so a steady request stream on
  /// this connection settles into zero per-frame payload allocations.
  std::string acquire_buffer() SPIRE_EXCLUDES(write_mutex) {
    util::MutexLock lock(write_mutex);
    if (buffer_pool.empty()) return {};
    std::string buffer = std::move(buffer_pool.back());
    buffer_pool.pop_back();
    return buffer;
  }
  void recycle_buffer(std::string buffer) SPIRE_EXCLUDES(write_mutex) {
    buffer.clear();
    if (buffer.capacity() == 0) return;
    util::MutexLock lock(write_mutex);
    if (buffer_pool.size() < kBufferPoolBound) {
      buffer_pool.push_back(std::move(buffer));
    }
  }

  int in_fd;
  int out_fd;
  bool owns_fds;
  std::uint64_t id;
  util::Mutex write_mutex{util::lock_rank::Rank::kConnectionWrite,
                          "connection-write"};
  std::atomic<bool> dead{false};
  /// Estimates accepted onto a shard whose reply has not been sent yet. A
  /// frame arriving while this is nonzero IS pipelining in its observable
  /// form (the server never required one-frame-at-a-time; v2 clients
  /// finally exploit it).
  std::atomic<std::size_t> in_flight{0};
  static constexpr std::size_t kBufferPoolBound = 4;
  std::vector<std::string> buffer_pool SPIRE_GUARDED_BY(write_mutex);
  ChaosRng chaos;
};

/// One estimate request in flight on a shard: everything finish_estimate
/// needs to assemble the reply after the pump evaluated the cache misses.
/// Indices are positions in the ORIGINAL request's workload list; the shard
/// only ever sees the misses.
struct EstimationServer::PendingEstimate {
  std::shared_ptr<Connection> conn;
  std::uint64_t seq = 0;
  /// kEstimateReply for text requests, kEstimateBinReply for binary; the
  /// payload encoding is identical, so cached result bytes are shared.
  FrameType reply_type = FrameType::kEstimateReply;
  std::string model_id;
  std::uint8_t merge_byte = 0;
  std::size_t total_workloads = 0;
  /// Encoded WorkloadResult bytes per original workload; "" = cache miss
  /// (an encoded result is never empty, so "" is unambiguous).
  std::vector<std::string> cached;
  /// Original index and cache hash of each miss, in shard batch order.
  std::vector<std::size_t> miss_index;
  std::vector<std::uint64_t> miss_hash;
};

/// The neutral request form both dispatch paths reduce to before the
/// shared tail. `workloads[i].hash` doubles as the estimate-cache hash and
/// (for text workloads) the ProfileCache key — one fnv1a64 per workload.
struct EstimationServer::EstimateInputs {
  FrameType reply_type = FrameType::kEstimateReply;
  std::string model_class;
  std::string model_id;
  std::uint32_t deadline_ms = 0;
  std::uint8_t merge = 0;
  std::vector<serve::Shard::Workload> workloads;
  /// Pins whatever view-form workloads alias (the binary frame payload and
  /// its parsed ProfileViews) until the shard completes the request.
  std::shared_ptr<const void> keepalive;
};

#if defined(_WIN32)

// The server is POSIX-only, like the mmap serving path. Constructing one
// on an unsupported platform fails loudly instead of half-working.
EstimationServer::EstimationServer(serve::ModelRegistry& registry,
                                   ServerOptions options)
    : registry_(registry), options_(std::move(options)),
      estimate_cache_(options_.cache_entries),
      profile_cache_(options_.profile_cache_entries) {
  fail("the estimation server requires POSIX descriptors");
}
EstimationServer::~EstimationServer() = default;
void EstimationServer::set_model(const std::string&, const std::string&) {}
bool EstimationServer::swap_to_latest(const std::string&, std::string*,
                                      std::string*) { return false; }
std::string EstimationServer::current_model_id() const { return {}; }
void EstimationServer::start() { fail("unsupported platform"); }
void EstimationServer::serve_connection_fds(int, int) {}
void EstimationServer::install_signal_handlers() {}
void EstimationServer::begin_shutdown() {}
bool EstimationServer::wait_until_drained() { return true; }
int EstimationServer::run() { return 1; }
StatsReply EstimationServer::stats_snapshot() const { return {}; }
ShardsReply EstimationServer::shards_snapshot() const { return {}; }
void EstimationServer::accept_loop(int) {}
void EstimationServer::watcher_loop() {}
void EstimationServer::join_threads() {}
void EstimationServer::reap_finished_connections_locked() {}
void EstimationServer::connection_loop(std::shared_ptr<Connection>) {}
bool EstimationServer::serve_one_frame(const std::shared_ptr<Connection>&) {
  return false;
}
void EstimationServer::dispatch_estimate(const std::shared_ptr<Connection>&,
                                         std::uint64_t, const std::string&,
                                         Clock::time_point) {}
void EstimationServer::dispatch_estimate_bin(
    const std::shared_ptr<Connection>&, std::uint64_t, std::string,
    Clock::time_point) {}
void EstimationServer::dispatch_estimate_common(
    const std::shared_ptr<Connection>&, std::uint64_t, EstimateInputs,
    Clock::time_point) {}
void EstimationServer::finish_estimate(
    const std::shared_ptr<PendingEstimate>&, std::vector<serve::BatchResult>,
    bool) {}
bool EstimationServer::send_frame(const std::shared_ptr<Connection>&,
                                  FrameType, std::uint64_t,
                                  std::string) { return false; }
bool EstimationServer::send_error(const std::shared_ptr<Connection>&,
                                  std::uint64_t, ErrorCode,
                                  const std::string&) { return false; }
std::shared_ptr<serve::Shard> EstimationServer::shard_for_id(
    const std::string&, std::string*) { return nullptr; }
std::shared_ptr<serve::Shard> EstimationServer::route_class(
    const std::string&, std::string*) { return nullptr; }
void EstimationServer::rebind(const std::string&,
                              const std::shared_ptr<serve::Shard>&) {}

#else

EstimationServer::EstimationServer(serve::ModelRegistry& registry,
                                   ServerOptions options)
    : registry_(registry), options_(std::move(options)),
      estimate_cache_(options_.cache_entries),
      profile_cache_(options_.profile_cache_entries) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.shard_batch == 0) options_.shard_batch = 1;
  util::ignore_sigpipe();
  if (::pipe(wake_pipe_) != 0) fail("cannot create self-pipe: " + errno_text());
  ::fcntl(wake_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_pipe_[1], F_SETFD, FD_CLOEXEC);
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  watcher_ = std::thread([this] { watcher_loop(); });
}

EstimationServer::~EstimationServer() {
  begin_shutdown();
  wait_until_drained();
  // Join the workers BEFORE any member destructs: drain_mutex_/drain_cv_
  // are declared after pool_, so default destruction order would tear
  // them down while a worker can still be inside its post-reply notify.
  // This also quiesces every shard pump, so the shard maps destruct with
  // no task left holding a shard alive.
  pool_.reset();
  int expected = wake_pipe_[1];
  g_signal_pipe.compare_exchange_strong(expected, -1);
  util::close_quietly(wake_pipe_[0]);
  util::close_quietly(wake_pipe_[1]);
}

// --- model routing ----------------------------------------------------------

std::shared_ptr<serve::Shard> EstimationServer::shard_for_id(
    const std::string& id, std::string* error_out) {
  {
    util::MutexLock lock(slots_mutex_);
    if (const auto it = shards_.find(id); it != shards_.end()) {
      return it->second;
    }
  }
  // Map outside the lock: registry I/O must not block routing for other
  // shards. Losing the ensuing insert race is benign — the loser's shard
  // never pumped, so it destructs quietly.
  std::shared_ptr<const serve::MappedModel> model;
  try {
    model = registry_.open(id);
  } catch (const std::exception& e) {
    if (error_out) *error_out = e.what();
    return nullptr;
  }
  auto shard = std::make_shared<serve::Shard>(
      id, std::move(model), *pool_, shard_bound(), options_.shard_batch,
      &profile_cache_);
  util::MutexLock lock(slots_mutex_);
  if (const auto it = shards_.find(id); it != shards_.end()) {
    return it->second;
  }
  shards_[id] = shard;
  shards_created_.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

std::shared_ptr<serve::Shard> EstimationServer::route_class(
    const std::string& model_class, std::string* error_out) {
  {
    util::MutexLock lock(slots_mutex_);
    const auto it = bindings_.find(model_class);
    if (it != bindings_.end() && it->second) return it->second;
  }
  // First request for this class: lazy-resolve the registry's latest.
  if (!swap_to_latest(model_class, nullptr, error_out)) return nullptr;
  util::MutexLock lock(slots_mutex_);
  const auto it = bindings_.find(model_class);
  if (it == bindings_.end() || !it->second) {
    if (error_out) *error_out = "model binding vanished during resolution";
    return nullptr;
  }
  return it->second;
}

void EstimationServer::rebind(const std::string& model_class,
                              const std::shared_ptr<serve::Shard>& shard) {
  std::shared_ptr<serve::Shard> displaced;
  {
    util::MutexLock lock(slots_mutex_);
    std::shared_ptr<serve::Shard>& bound = bindings_[model_class];
    std::shared_ptr<serve::Shard> old = std::move(bound);
    bound = shard;
    if (old && old != shard) {
      bool still_routed = false;
      for (const auto& [cls, s] : bindings_) {
        if (s == old) {
          still_routed = true;
          break;
        }
      }
      if (!still_routed) {
        // The shard lost its last binding: unregister it (explicit-id
        // requests for the model get a fresh shard) and keep a weak row
        // for the shards listing while its queue drains.
        if (const auto it = shards_.find(old->model_id());
            it != shards_.end() && it->second == old) {
          shards_.erase(it);
        }
        draining_shards_.erase(
            std::remove_if(draining_shards_.begin(), draining_shards_.end(),
                           [](const std::weak_ptr<serve::Shard>& weak) {
                             return weak.expired();
                           }),
            draining_shards_.end());
        draining_shards_.push_back(old);
        displaced = std::move(old);
      }
    }
  }
  if (displaced) {
    // Retire outside the routing lock: new requests re-route or shed,
    // everything already queued still drains through the pump.
    displaced->retire();
    shards_retired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EstimationServer::set_model(const std::string& id,
                                 const std::string& model_class) {
  std::string error;
  const std::shared_ptr<serve::Shard> shard = shard_for_id(id, &error);
  if (!shard) fail(error);
  rebind(model_class, shard);
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool EstimationServer::swap_to_latest(const std::string& model_class,
                                      std::string* id_out,
                                      std::string* error_out) {
  const std::string latest = registry_.latest();
  if (latest.empty()) {
    if (error_out) {
      *error_out =
          "registry at '" + registry_.root() + "' has no published models";
    }
    return false;
  }
  std::string open_error;
  const std::shared_ptr<serve::Shard> shard = shard_for_id(latest, &open_error);
  if (!shard) {
    // A gc may have raced the resolution; the binding keeps its old shard.
    if (error_out) {
      *error_out = "cannot swap to candidate '" + latest +
                   "' from registry at '" + registry_.root() +
                   "': " + open_error;
    }
    return false;
  }
  rebind(model_class, shard);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  if (id_out) *id_out = latest;
  return true;
}

std::string EstimationServer::current_model_id() const {
  util::MutexLock lock(slots_mutex_);
  const auto it = bindings_.find("");
  return it == bindings_.end() || !it->second ? std::string()
                                              : it->second->model_id();
}

// --- socket transport -------------------------------------------------------

void EstimationServer::start() {
  if (options_.socket_path.empty()) {
    fail("the socket transport needs options.socket_path");
  }
  // The whole body runs under lifecycle_mutex_: started_ is both the check
  // and the commit, so two racing start() calls serialize here and the
  // loser fails cleanly instead of leaking a second listener.
  util::MutexLock lock(lifecycle_mutex_);
  if (started_) fail("already started");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) fail("cannot create socket: " + errno_text());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    util::close_quietly(listen_fd);
    fail("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A stale socket file from a crashed predecessor would make bind fail.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text();
    util::close_quietly(listen_fd);
    fail("cannot bind " + options_.socket_path + ": " + why);
  }
  if (::listen(listen_fd, 64) != 0) {
    const std::string why = errno_text();
    util::close_quietly(listen_fd);
    fail("cannot listen on " + options_.socket_path + ": " + why);
  }
  started_ = true;
  // The accept thread takes sole ownership of the descriptor: handing it
  // over by value (instead of the old listen_fd_ member) removes the one
  // field two threads wrote without a guard.
  accept_thread_ = std::thread([this, listen_fd] { accept_loop(listen_fd); });
}

void EstimationServer::accept_loop(int listen_fd) {
  util::lock_rank::ScopedThreadLifetime lifetime(accept_token_);
  while (!stop_io_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    // Tick so a shutdown request stops the intake within ~100 ms.
    const util::IoStatus ready = util::wait_readable(listen_fd, 100);
    if (ready == util::IoStatus::kTimeout) continue;
    if (ready != util::IoStatus::kOk) break;
    int fd;
    for (;;) {
      fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0 || errno != EINTR) break;
    }
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM) {
        // Descriptor/memory pressure is transient: closing connections
        // frees capacity, so keep the listener alive instead of
        // permanently refusing service while the process runs on.
        std::this_thread::sleep_for(ms(100));
        continue;
      }
      break;
    }
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(
        fd, fd, /*owns=*/true,
        next_connection_id_.fetch_add(1, std::memory_order_relaxed),
        options_.chaos);
    auto done = std::make_shared<std::atomic<bool>>(false);
    util::MutexLock lock(connections_mutex_);
    reap_finished_connections_locked();
    ConnectionWorker worker;
    worker.done = done;
    worker.token =
        std::make_unique<util::lock_rank::ThreadToken>("server-connection");
    // The token outlives the thread (it rides in connection_threads_ until
    // the join), so the lambda can hold a plain pointer.
    const util::lock_rank::ThreadToken* token = worker.token.get();
    worker.thread = std::thread(
        [this, conn = std::move(conn), done = std::move(done),
         token]() mutable {
          util::lock_rank::ScopedThreadLifetime worker_lifetime(*token);
          connection_loop(std::move(conn));
          done->store(true, std::memory_order_release);
        });
    connection_threads_.push_back(std::move(worker));
  }
  util::close_quietly(listen_fd);
  ::unlink(options_.socket_path.c_str());
}

void EstimationServer::connection_loop(std::shared_ptr<Connection> conn) {
  while (serve_one_frame(conn)) {
  }
}

void EstimationServer::serve_connection_fds(int in_fd, int out_fd) {
  auto conn = std::make_shared<Connection>(
      in_fd, out_fd, /*owns=*/false,
      next_connection_id_.fetch_add(1, std::memory_order_relaxed),
      options_.chaos);
  accepted_connections_.fetch_add(1, std::memory_order_relaxed);
  while (serve_one_frame(conn)) {
  }
}

// --- the frame loop ---------------------------------------------------------

bool EstimationServer::serve_one_frame(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) return false;
  // Idle wait between frames, ticking to observe shutdown. No idle
  // timeout: a quiet client costs one parked thread, not a worker.
  for (;;) {
    if (stop_io_.load(std::memory_order_acquire)) return false;
    const util::IoStatus ready = util::wait_readable(conn->in_fd, 100);
    if (ready == util::IoStatus::kTimeout) continue;
    if (ready != util::IoStatus::kOk) return false;
    break;
  }
  if (conn->chaos.stall_before_read()) {
    chaos_injected_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(ms(options_.chaos.stall_ms));
  }
  // Once a frame starts, the peer has read_timeout_ms to finish it — a
  // client stalled mid-frame is disconnected, never waited on forever.
  unsigned char header_bytes[kFrameHeaderBytes];
  util::IoStatus st = util::read_exact(conn->in_fd, header_bytes,
                                       sizeof header_bytes,
                                       options_.read_timeout_ms);
  if (st != util::IoStatus::kOk) {
    // kEof before any byte is a normal close; mid-header it is a torn
    // frame. Either way no complete frame arrived, so no reply is owed.
    if (st == util::IoStatus::kTimeout) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  FrameHeader header;
  try {
    header = decode_header(header_bytes, options_.limits);
  } catch (const ProtocolError& e) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    // The seq field sits at a fixed offset, so even a rejected header can
    // be answered with a correlated error before the connection closes
    // (the framing is no longer trustworthy after a bad header).
    std::uint64_t seq;
    std::memcpy(&seq, header_bytes + 8, 8);
    send_error(conn, seq, e.code(), e.what());
    return false;
  }
  // The payload buffer comes from the connection's pool and (for non-binary
  // frames) goes back into it at scope exit, so a steady stream re-reads
  // into the same allocation.
  std::string payload = conn->acquire_buffer();
  payload.assign(header.payload_len, '\0');
  struct PayloadRecycler {
    Connection* conn;
    std::string* payload;
    ~PayloadRecycler() {
      if (conn) conn->recycle_buffer(std::move(*payload));
    }
  } recycler{conn.get(), &payload};
  if (header.payload_len > 0) {
    st = util::read_exact(conn->in_fd, payload.data(), payload.size(),
                          options_.read_timeout_ms);
    if (st != util::IoStatus::kOk) {
      if (st == util::IoStatus::kTimeout) {
        io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;  // torn frame: never completed, no reply owed
    }
  }
  bytes_read_.fetch_add(kFrameHeaderBytes + header.payload_len,
                        std::memory_order_relaxed);
  if (conn->in_flight.load(std::memory_order_acquire) > 0) {
    // A complete frame arrived while earlier requests on this connection
    // were still being evaluated: the peer is pipelining.
    frames_pipelined_.fetch_add(1, std::memory_order_relaxed);
  }
  const Clock::time_point received = Clock::now();
  if (draining_.load(std::memory_order_acquire)) {
    send_error(conn, header.seq, ErrorCode::kShuttingDown,
               "server is draining");
    return !stop_io_.load(std::memory_order_acquire);
  }
  switch (header.type) {
    case FrameType::kPingRequest: {
      try {
        decode_empty_request(payload);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      return send_frame(conn, FrameType::kPingReply, header.seq, "");
    }
    case FrameType::kStatsRequest: {
      try {
        decode_empty_request(payload);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      return send_frame(
          conn, FrameType::kStatsReply, header.seq,
          encode_stats_reply(stats_snapshot(), options_.limits));
    }
    case FrameType::kShardsRequest: {
      try {
        decode_empty_request(payload);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      return send_frame(
          conn, FrameType::kShardsReply, header.seq,
          encode_shards_reply(shards_snapshot(), options_.limits));
    }
    case FrameType::kSwapRequest: {
      SwapRequest request;
      try {
        request = decode_swap_request(payload, options_.limits);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      std::string id;
      std::string error;
      if (!swap_to_latest(request.model_class, &id, &error)) {
        return send_error(conn, header.seq, ErrorCode::kModelUnavailable,
                          error);
      }
      SwapReply reply;
      reply.model_id = id;
      reply.swap_generation = swap_generation();
      return send_frame(conn, FrameType::kSwapReply, header.seq,
                        encode_swap_reply(reply, options_.limits));
    }
    case FrameType::kEstimateRequest:
      dispatch_estimate(conn, header.seq, payload, received);
      return true;
    case FrameType::kEstimateBinRequest:
      // The payload moves into the dispatcher (its decoded string_views and
      // parsed spans alias it), so it cannot be recycled here.
      recycler.conn = nullptr;
      dispatch_estimate_bin(conn, header.seq, std::move(payload), received);
      return true;
    default:
      send_error(conn, header.seq, ErrorCode::kUnknownType,
                 "unknown frame type " +
                     std::to_string(static_cast<unsigned>(header.type)));
      return true;  // framing is intact; the connection survives
  }
}

void EstimationServer::dispatch_estimate(
    const std::shared_ptr<Connection>& conn, std::uint64_t seq,
    const std::string& payload, Clock::time_point received) {
  estimate_requests_.fetch_add(1, std::memory_order_relaxed);
  requests_text_.fetch_add(1, std::memory_order_relaxed);
  // Chaos shed stays BEFORE parsing, like real admission under a flood.
  if (conn->chaos.force_overload()) {
    chaos_injected_.fetch_add(1, std::memory_order_relaxed);
    shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, ErrorCode::kOverloaded,
               "queue full (" + std::to_string(shard_bound()) +
                   " pending requests)");
    return;
  }
  EstimateRequest request;
  try {
    request = decode_estimate_request(payload, options_.limits);
  } catch (const ProtocolError& e) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, e.code(), e.what());
    return;
  }
  EstimateInputs inputs;
  inputs.reply_type = FrameType::kEstimateReply;
  inputs.model_class = std::move(request.model_class);
  inputs.model_id = std::move(request.model_id);
  inputs.deadline_ms = request.deadline_ms;
  inputs.merge = request.merge;
  inputs.workloads.reserve(request.workload_csvs.size());
  for (std::string& csv : request.workload_csvs) {
    serve::Shard::Workload workload;
    workload.hash = serve::EstimateCache::workload_hash(csv);
    workload.csv = std::move(csv);
    inputs.workloads.push_back(std::move(workload));
  }
  dispatch_estimate_common(conn, seq, std::move(inputs), received);
}

void EstimationServer::dispatch_estimate_bin(
    const std::shared_ptr<Connection>& conn, std::uint64_t seq,
    std::string payload, Clock::time_point received) {
  estimate_requests_.fetch_add(1, std::memory_order_relaxed);
  requests_binary_.fetch_add(1, std::memory_order_relaxed);
  if (conn->chaos.force_overload()) {
    chaos_injected_.fetch_add(1, std::memory_order_relaxed);
    shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, ErrorCode::kOverloaded,
               "queue full (" + std::to_string(shard_bound()) +
                   " pending requests)");
    return;
  }
  // Everything the evaluation will alias lives here: the frame payload (the
  // decoded request's profile string_views point into it) and the parsed
  // ProfileViews (their spans point into the payload too, or into their own
  // owned storage for a misaligned buffer). The shared_ptr rides the shard
  // request as its keepalive, so eviction/reply ordering can never free
  // bytes a batch kernel is still reading.
  struct BinKeepalive {
    std::string payload;
    std::vector<serve::profile_bin::ProfileView> views;
  };
  auto keep = std::make_shared<BinKeepalive>();
  keep->payload = std::move(payload);
  EstimateBinRequest request;
  try {
    request = decode_estimate_bin_request(keep->payload, options_.limits);
  } catch (const ProtocolError& e) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, e.code(), e.what());
    return;
  }
  serve::profile_bin::Limits bin_limits;
  bin_limits.max_samples = options_.limits.max_profile_samples;
  bin_limits.max_name_bytes = options_.limits.max_name_bytes;
  keep->views.reserve(request.profiles.size());
  for (std::size_t i = 0; i < request.profiles.size(); ++i) {
    try {
      keep->views.push_back(
          serve::profile_bin::parse(request.profiles[i], bin_limits));
    } catch (const std::exception& e) {
      // A profile that fails the bounded parse poisons the whole request
      // (same strictness as the frame codec): the client gets the
      // section/offset diagnostic plus which workload tripped it.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, seq, ErrorCode::kMalformedFrame,
                 "workload " + std::to_string(i) + ": " + e.what());
      return;
    }
  }
  EstimateInputs inputs;
  inputs.reply_type = FrameType::kEstimateBinReply;
  inputs.model_class = std::move(request.model_class);
  inputs.model_id = std::move(request.model_id);
  inputs.deadline_ms = request.deadline_ms;
  inputs.merge = request.merge;
  inputs.workloads.reserve(request.profiles.size());
  for (std::size_t i = 0; i < request.profiles.size(); ++i) {
    serve::Shard::Workload workload;
    workload.view = &keep->views[i].view();
    // The estimate memo-cache key hashes the exact wire bytes; binary and
    // text encodings of the same samples hash differently, which only
    // costs a first-time miss per representation.
    workload.hash = serve::EstimateCache::workload_hash(request.profiles[i]);
    inputs.workloads.push_back(std::move(workload));
  }
  inputs.keepalive = std::move(keep);
  dispatch_estimate_common(conn, seq, std::move(inputs), received);
}

void EstimationServer::dispatch_estimate_common(
    const std::shared_ptr<Connection>& conn, std::uint64_t seq,
    EstimateInputs inputs, Clock::time_point received) {
  // Drawn on the reader thread: the connection's ChaosRng is
  // single-threaded by construction, so shard pumps never touch it.
  const bool chaos_swap = conn->chaos.swap_mid_request();
  const bool has_deadline = inputs.deadline_ms > 0;
  const std::uint32_t deadline_ms =
      std::min(inputs.deadline_ms, options_.max_deadline_ms);
  const Clock::time_point deadline = received + ms(deadline_ms);
  const model::Merge merge = inputs.merge == 0 ? model::Merge::kTimeWeighted
                                               : model::Merge::kUnweighted;

  // At most two routing attempts: a shard retired between routing and
  // enqueue (a racing hot-swap) re-routes once to the replacement binding.
  for (int attempt = 0;; ++attempt) {
    std::string error;
    const std::shared_ptr<serve::Shard> shard =
        inputs.model_id.empty() ? route_class(inputs.model_class, &error)
                                : shard_for_id(inputs.model_id, &error);
    if (!shard) {
      send_error(conn, seq, ErrorCode::kModelUnavailable, error);
      return;
    }

    auto pending = std::make_shared<PendingEstimate>();
    pending->conn = conn;
    pending->seq = seq;
    pending->reply_type = inputs.reply_type;
    pending->model_id = shard->model_id();
    pending->merge_byte = inputs.merge;
    pending->total_workloads = inputs.workloads.size();
    pending->cached.resize(inputs.workloads.size());

    serve::Shard::Request shard_request;
    shard_request.merge = merge;
    shard_request.deadline = deadline;
    shard_request.has_deadline = has_deadline;
    shard_request.keepalive = inputs.keepalive;
    // Memo-cache consult before enqueue: only the misses ride the queue,
    // and a fully-cached request never takes a queue slot at all. The
    // workloads are COPIED into the shard request (views are pointer
    // copies, text pays one string copy) so the rare retired-shard retry
    // can rebuild from `inputs`.
    for (std::size_t i = 0; i < inputs.workloads.size(); ++i) {
      serve::EstimateCache::Key key;
      key.model_id = pending->model_id;
      key.csv_hash = inputs.workloads[i].hash;
      key.merge = inputs.merge;
      if (std::optional<std::string> hit = estimate_cache_.lookup(key)) {
        pending->cached[i] = std::move(*hit);
      } else {
        pending->miss_index.push_back(i);
        pending->miss_hash.push_back(key.csv_hash);
        shard_request.workloads.push_back(inputs.workloads[i]);
      }
    }

    if (pending->miss_index.empty()) {
      // Every workload answered from memory: reply inline on the reader
      // thread. Byte-identity with a recompute holds because the cached
      // value IS the encoded per-result block of a past reply.
      if (chaos_swap) {
        chaos_injected_.fetch_add(1, std::memory_order_relaxed);
        std::string id;
        std::string swap_error;
        (void)swap_to_latest(inputs.model_class, &id, &swap_error);
      }
      try {
        EstimateReply reply;
        reply.model_id = pending->model_id;
        reply.swap_generation = swap_generation();
        reply.results.reserve(pending->cached.size());
        for (const std::string& bytes : pending->cached) {
          reply.results.push_back(
              decode_workload_result(bytes, options_.limits));
        }
        send_frame(conn, inputs.reply_type, seq,
                   encode_estimate_reply(reply, options_.limits));
      } catch (const std::exception& e) {
        send_error(conn, seq, ErrorCode::kInternal, e.what());
      }
      return;
    }

    shard_request.begin = [this, chaos_swap,
                           model_class = inputs.model_class] {
      // Dequeue: active before not-queued, so the drain predicate
      // (queued == 0 && active == 0) never observes a request in neither
      // set.
      active_.fetch_add(1, std::memory_order_acq_rel);
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      if (chaos_swap) {
        // The pump holds no locks here, so the swap (which takes the
        // routing lock and may retire THIS shard) cannot deadlock; a
        // retired shard still drains its queue, this request included.
        chaos_injected_.fetch_add(1, std::memory_order_relaxed);
        std::string id;
        std::string error;
        (void)swap_to_latest(model_class, &id, &error);
      }
    };
    shard_request.complete = [this, pending](
                                 std::vector<serve::BatchResult> results,
                                 bool expired_in_queue) {
      finish_estimate(pending, std::move(results), expired_in_queue);
    };

    queued_.fetch_add(1, std::memory_order_acq_rel);
    // Counted before enqueue: the pump may complete (and decrement) on
    // another thread before enqueue() even returns here.
    conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
    const serve::Shard::Enqueue verdict =
        shard->enqueue(std::move(shard_request));
    if (verdict == serve::Shard::Enqueue::kAccepted) return;
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    { util::MutexLock lock(drain_mutex_); }
    drain_cv_.notify_all();
    if (verdict == serve::Shard::Enqueue::kRetired && attempt == 0) {
      continue;
    }
    shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, ErrorCode::kOverloaded,
               verdict == serve::Shard::Enqueue::kRetired
                   ? "shard for model " + pending->model_id +
                         " retired during routing"
                   : "queue full (" + std::to_string(shard_bound()) +
                         " pending requests for model " + pending->model_id +
                         ")");
    return;
  }
}

void EstimationServer::finish_estimate(
    const std::shared_ptr<PendingEstimate>& pending,
    std::vector<serve::BatchResult> results, bool expired_in_queue) {
  struct DrainGuard {
    EstimationServer* server;
    Connection* conn;
    ~DrainGuard() {
      conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      server->active_.fetch_sub(1, std::memory_order_acq_rel);
      { util::MutexLock lock(server->drain_mutex_); }
      server->drain_cv_.notify_all();
    }
  } guard{this, pending->conn.get()};

  if (expired_in_queue) {
    // Deadline check #1 fired at dequeue: the request was never evaluated.
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    send_error(pending->conn, pending->seq, ErrorCode::kDeadlineExceeded,
               "deadline expired while queued");
    return;
  }
  try {
    if (results.size() != pending->miss_index.size()) {
      throw std::runtime_error("shard returned " +
                               std::to_string(results.size()) +
                               " results for " +
                               std::to_string(pending->miss_index.size()) +
                               " workloads");
    }
    EstimateReply reply;
    reply.model_id = pending->model_id;
    reply.swap_generation = swap_generation();
    reply.results.reserve(pending->total_workloads);
    std::size_t next_miss = 0;
    for (std::size_t i = 0; i < pending->total_workloads; ++i) {
      if (!pending->cached[i].empty()) {
        reply.results.push_back(
            decode_workload_result(pending->cached[i], options_.limits));
        continue;
      }
      const serve::BatchResult& fresh = results[next_miss];
      WorkloadResult result;
      if (fresh.deadline_expired) {
        // Deadline check #2, between batch slices: workloads the budget no
        // longer covers are reported, not silently dropped.
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
        result.status = ErrorCode::kDeadlineExceeded;
        result.error = "deadline expired after " + std::to_string(i) +
                       " of " + std::to_string(pending->total_workloads) +
                       " workload(s)";
      } else if (!fresh.ok()) {
        result.status = ErrorCode::kEstimationFailed;
        result.error =
            bounded_message(fresh.error, options_.limits.max_error_bytes);
      } else {
        result.samples = static_cast<std::uint64_t>(fresh.samples);
        result.throughput = fresh.estimate->throughput;
        const std::size_t top = std::min(fresh.estimate->ranking.size(),
                                         options_.limits.max_ranking);
        result.ranking.reserve(top);
        for (std::size_t j = 0; j < top; ++j) {
          const model::MetricEstimate& r = fresh.estimate->ranking[j];
          result.ranking.push_back(
              {std::string(counters::event_name(r.metric)), r.p_bar,
               static_cast<std::uint64_t>(r.samples)});
        }
        // Only kOk results are memoized: errors and expired slices must
        // re-evaluate on retry, not replay from memory.
        serve::EstimateCache::Key key;
        key.model_id = pending->model_id;
        key.csv_hash = pending->miss_hash[next_miss];
        key.merge = pending->merge_byte;
        estimate_cache_.insert(key,
                               encode_workload_result(result, options_.limits));
      }
      ++next_miss;
      reply.results.push_back(std::move(result));
    }
    send_frame(pending->conn, pending->reply_type, pending->seq,
               encode_estimate_reply(reply, options_.limits));
  } catch (const ProtocolError& e) {
    send_error(pending->conn, pending->seq, e.code(), e.what());
  } catch (const std::exception& e) {
    send_error(pending->conn, pending->seq, ErrorCode::kInternal, e.what());
  }
}

// --- replies ----------------------------------------------------------------

bool EstimationServer::send_frame(const std::shared_ptr<Connection>& conn,
                                  FrameType type, std::uint64_t seq,
                                  std::string payload) {
  if (payload.size() > options_.limits.max_frame_bytes) {
    type = FrameType::kErrorReply;
    ErrorReply fallback;
    fallback.code = ErrorCode::kInternal;
    fallback.message = "reply exceeded the frame limit";
    payload = encode_error_reply(fallback, options_.limits);
  }
  // Scatter-gather send: the 16-byte header lives on the stack and goes out
  // in the same writev as the payload — no header+payload concatenation
  // copy, no per-reply frame allocation.
  unsigned char header[kFrameHeaderBytes];
  encode_header_into(type, seq, static_cast<std::uint32_t>(payload.size()),
                     header);
  bool sent = false;
  {
    util::MutexLock lock(conn->write_mutex);
    if (conn->dead.load(std::memory_order_acquire)) return false;
    util::ConstBuffer buffers[2] = {{header, sizeof header},
                                    {payload.data(), payload.size()}};
    const util::IoStatus st = util::writev_all_deadline(
        conn->out_fd, buffers, payload.empty() ? 1u : 2u,
        options_.write_timeout_ms);
    if (st != util::IoStatus::kOk) {
      if (st == util::IoStatus::kTimeout) {
        io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      // One failed/stalled write poisons the stream (the peer would see a
      // torn reply); everything else on this connection is dropped.
      conn->dead.store(true, std::memory_order_release);
      return false;
    }
    sent = true;
  }
  bytes_written_.fetch_add(kFrameHeaderBytes + payload.size(),
                           std::memory_order_relaxed);
  if (type == FrameType::kErrorReply) {
    replies_error_.fetch_add(1, std::memory_order_relaxed);
  } else {
    replies_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  // The payload's heap block feeds the next frame read or reply on this
  // connection.
  conn->recycle_buffer(std::move(payload));
  return sent;
}

bool EstimationServer::send_error(const std::shared_ptr<Connection>& conn,
                                  std::uint64_t seq, ErrorCode code,
                                  const std::string& message) {
  ErrorReply reply;
  reply.code = code;
  reply.message = bounded_message(message, options_.limits.max_error_bytes);
  return send_frame(conn, FrameType::kErrorReply, seq,
                    encode_error_reply(reply, options_.limits));
}

// --- shutdown ---------------------------------------------------------------

void EstimationServer::install_signal_handlers() {
  g_signal_pipe.store(wake_pipe_[1], std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = spire_forward_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  // Deliberately no SA_RESTART: the EINTR hardening in util/posix_io.h is
  // load-bearing, and signals exercising it keeps it honest.
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  util::ignore_sigpipe();
}

void EstimationServer::watcher_loop() {
  util::lock_rank::ScopedThreadLifetime lifetime(watcher_token_);
  while (!watcher_stop_.load(std::memory_order_acquire)) {
    const util::IoStatus st = util::wait_readable(wake_pipe_[0], 200);
    if (st == util::IoStatus::kOk) {
      char buf[16];
      (void)util::read_retry(wake_pipe_[0], buf, sizeof buf);
      begin_shutdown();
    } else if (st == util::IoStatus::kError) {
      return;
    }
  }
}

void EstimationServer::begin_shutdown() {
  {
    util::MutexLock lock(lifecycle_mutex_);
    if (draining_.load(std::memory_order_acquire)) return;  // idempotent
    // drain_started_ is written before draining_ flips, under the same
    // mutex wait_until_drained reads it under — no waiter can observe
    // draining_ true with an epoch (expired) drain deadline.
    drain_started_ = Clock::now();
    draining_.store(true, std::memory_order_release);
  }
  lifecycle_cv_.notify_all();
  drain_cv_.notify_all();
}

bool EstimationServer::wait_until_drained() {
  // Both predicates read only atomics, never fields guarded by the waited
  // mutex — the one shape where CondVar's predicate overloads and the
  // thread-safety analysis agree (see thread_annotations.h).
  {
    util::MutexLock lock(lifecycle_mutex_);
    lifecycle_cv_.wait(lifecycle_mutex_, [this] {
      return draining_.load(std::memory_order_acquire);
    });
  }
  Clock::time_point deadline;
  {
    util::MutexLock lock(lifecycle_mutex_);
    deadline = drain_started_ + ms(options_.drain_timeout_ms);
  }
  bool clean;
  {
    util::MutexLock lock(drain_mutex_);
    clean = drain_cv_.wait_until(drain_mutex_, deadline, [this] {
      return queued_.load(std::memory_order_acquire) == 0 &&
             active_.load(std::memory_order_acquire) == 0;
    });
  }
  stop_io_.store(true, std::memory_order_release);
  join_threads();
  return clean;
}

int EstimationServer::run() { return wait_until_drained() ? 0 : 1; }

void EstimationServer::join_threads() {
  // Serialized by join_mutex_, NOT connections_mutex_: the accept thread
  // takes connections_mutex_ to register each accepted peer, so joining
  // it while holding that mutex would deadlock shutdown against a racing
  // accept. A second caller blocks here until the first finishes joining.
  util::MutexLock join_lock(join_mutex_);
  if (joined_) return;
  joined_ = true;
  watcher_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    // note_join records held-locks -> accept-thread edges; joining this
    // thread under connections_mutex_ (the PR 6 shutdown deadlock) closes
    // a cycle the validator reports before join() hangs.
    util::lock_rank::note_join(accept_token_);
    accept_thread_.join();
  }
  // The accept thread is gone, so no new workers can appear; swap the
  // list out under the lock and join outside it.
  std::vector<ConnectionWorker> workers;
  {
    util::MutexLock lock(connections_mutex_);
    workers.swap(connection_threads_);
  }
  for (ConnectionWorker& w : workers) {
    if (w.thread.joinable()) {
      util::lock_rank::note_join(*w.token);
      w.thread.join();
    }
  }
  if (watcher_.joinable()) {
    util::lock_rank::note_join(watcher_token_);
    watcher_.join();
  }
}

void EstimationServer::reap_finished_connections_locked() {
  auto it = connection_threads_.begin();
  while (it != connection_threads_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      // The loop has returned, so join() completes without blocking. This
      // join happens under connections_mutex_, which is safe BECAUSE the
      // worker never takes that mutex — per-worker tokens let the rank
      // graph prove exactly that, instead of flagging every under-lock
      // join the way a single shared lifetime node would.
      if (it->thread.joinable()) {
        util::lock_rank::note_join(*it->token);
        it->thread.join();
      }
      it = connection_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- observability ----------------------------------------------------------

StatsReply EstimationServer::stats_snapshot() const {
  std::uint64_t coalesced_batches = 0;
  std::uint64_t coalesced_requests = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t shards_active = 0;
  std::uint64_t shards_draining = 0;
  {
    // kSlots (40) < kShardQueue (45): taking each shard's stats under the
    // routing lock follows the rank order.
    util::MutexLock lock(slots_mutex_);
    shards_active = shards_.size();
    const auto fold = [&](const std::shared_ptr<serve::Shard>& shard) {
      const serve::Shard::Stats s = shard->stats();
      coalesced_batches += s.batches;
      coalesced_requests += s.batched_requests;
      max_batch = std::max(max_batch, s.max_batch_requests);
    };
    for (const auto& [id, shard] : shards_) fold(shard);
    for (const auto& weak : draining_shards_) {
      if (const std::shared_ptr<serve::Shard> shard = weak.lock()) {
        fold(shard);
        ++shards_draining;
      }
    }
  }
  const serve::EstimateCache::Stats cache = estimate_cache_.stats();
  const serve::ProfileCache::Stats profile_cache = profile_cache_.stats();
  const serve::ModelRegistry::CacheStats registry_cache =
      registry_.cache_stats();
  // Process-wide batch-kernel counters (serve/model_eval.h): how much of
  // the eval traffic went through the planned sort/sweep/execute path vs
  // the small-batch scalar fallback — the eval-layer signals the upcoming
  // mmap'd stats segment will export.
  const serve::EvalCountersSnapshot eval = serve::eval_counters_snapshot();
  StatsReply stats;
  stats.counters = {
      {"accepted_connections",
       accepted_connections_.load(std::memory_order_relaxed)},
      {"active_requests", active_.load(std::memory_order_relaxed)},
      {"bytes_read", bytes_read_.load(std::memory_order_relaxed)},
      {"bytes_written", bytes_written_.load(std::memory_order_relaxed)},
      {"cache_evictions", cache.evictions},
      {"cache_hits", cache.hits},
      {"cache_misses", cache.misses},
      {"chaos_injected", chaos_injected_.load(std::memory_order_relaxed)},
      {"coalesced_batches", coalesced_batches},
      {"coalesced_requests", coalesced_requests},
      {"deadline_expired", deadline_expired_.load(std::memory_order_relaxed)},
      {"estimate_requests",
       estimate_requests_.load(std::memory_order_relaxed)},
      {"eval_planned_batches", eval.planned_batches},
      {"eval_planned_lanes", eval.planned_lanes},
      {"eval_scalar_batches", eval.scalar_batches},
      {"eval_scalar_lanes", eval.scalar_lanes},
      {"frames_pipelined", frames_pipelined_.load(std::memory_order_relaxed)},
      {"frames_received", frames_received_.load(std::memory_order_relaxed)},
      {"io_timeouts", io_timeouts_.load(std::memory_order_relaxed)},
      {"malformed_frames", malformed_frames_.load(std::memory_order_relaxed)},
      {"max_batch_requests", max_batch},
      {"profile_parse_evictions", profile_cache.evictions},
      {"profile_parse_hits", profile_cache.hits},
      {"profile_parse_misses", profile_cache.misses},
      {"queue_depth", queued_.load(std::memory_order_relaxed)},
      {"registry_cache_evictions", registry_cache.evictions},
      {"registry_cache_hits", registry_cache.hits},
      {"registry_cache_misses", registry_cache.misses},
      {"replies_error", replies_error_.load(std::memory_order_relaxed)},
      {"replies_ok", replies_ok_.load(std::memory_order_relaxed)},
      {"requests_binary", requests_binary_.load(std::memory_order_relaxed)},
      {"requests_text", requests_text_.load(std::memory_order_relaxed)},
      {"shards_active", shards_active},
      {"shards_created", shards_created_.load(std::memory_order_relaxed)},
      {"shards_draining", shards_draining},
      {"shards_retired", shards_retired_.load(std::memory_order_relaxed)},
      {"shed_overloaded", shed_overloaded_.load(std::memory_order_relaxed)},
      {"swap_generation", generation_.load(std::memory_order_relaxed)},
  };
  return stats;
}

ShardsReply EstimationServer::shards_snapshot() const {
  ShardsReply reply;
  util::MutexLock lock(slots_mutex_);
  // Reverse the class -> shard bindings into per-shard class lists
  // (bindings_ iterates in class order, so each list comes out sorted).
  std::map<const serve::Shard*, std::vector<std::string>> classes;
  for (const auto& [cls, shard] : bindings_) {
    if (shard) classes[shard.get()].push_back(cls);
  }
  const auto row = [&](const std::shared_ptr<serve::Shard>& shard) {
    const serve::Shard::Stats s = shard->stats();
    ShardInfo info;
    info.model_id = shard->model_id();
    if (const auto it = classes.find(shard.get()); it != classes.end()) {
      info.classes = it->second;
      if (info.classes.size() > options_.limits.max_stats) {
        info.classes.resize(options_.limits.max_stats);
      }
    }
    info.queue_depth = s.queue_depth;
    info.enqueued = s.enqueued;
    info.shed = s.shed_full + s.shed_retired;
    info.completed = s.completed;
    info.batches = s.batches;
    info.max_batch = s.max_batch_requests;
    info.retired = s.retired ? 1 : 0;
    return info;
  };
  for (const auto& [id, shard] : shards_) reply.shards.push_back(row(shard));
  for (const auto& weak : draining_shards_) {
    if (const std::shared_ptr<serve::Shard> shard = weak.lock()) {
      reply.shards.push_back(row(shard));
    }
  }
  std::sort(reply.shards.begin(), reply.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return std::tie(a.model_id, a.retired) <
                     std::tie(b.model_id, b.retired);
            });
  if (reply.shards.size() > options_.limits.max_shards) {
    reply.shards.resize(options_.limits.max_shards);
  }
  return reply;
}

#endif  // !_WIN32

}  // namespace spire::server
