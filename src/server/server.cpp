#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <system_error>

#if !defined(_WIN32)
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "counters/events.h"
#include "sampling/dataset.h"
#include "sampling/dataset_view.h"
#include "serve/model_eval.h"
#include "util/posix_io.h"

namespace spire::server {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("server: " + what);
}

// std::strerror is not thread-safe (concurrency-mt-unsafe); error_code
// formats the same message from a static table without shared state.
std::string errno_text() {
  return std::error_code(errno, std::generic_category()).message();
}

std::chrono::milliseconds ms(long long count) {
  return std::chrono::milliseconds(count);
}

std::string bounded_message(const std::string& message, std::size_t max) {
  if (message.size() <= max) return message;
  return message.substr(0, max);
}

#if !defined(_WIN32)
// Self-pipe write end for the async-signal-safe shutdown handler. One
// server per process may own the handlers at a time.
std::atomic<int> g_signal_pipe{-1};

extern "C" void spire_forward_shutdown_signal(int) {
  const int fd = g_signal_pipe.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe just means a shutdown request is already pending.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}
#endif

}  // namespace

/// One peer. The fds are closed by the LAST holder of the shared_ptr, so a
/// pool task can still write its reply after the reader thread exited.
struct EstimationServer::Connection {
  Connection(int in, int out, bool owns, std::uint64_t cid,
             const ChaosOptions& chaos_options)
      : in_fd(in), out_fd(out), owns_fds(owns), id(cid),
        chaos(chaos_options, cid) {}
  ~Connection() {
    if (owns_fds) {
      util::close_quietly(in_fd);
      if (out_fd != in_fd) util::close_quietly(out_fd);
    }
  }

  int in_fd;
  int out_fd;
  bool owns_fds;
  std::uint64_t id;
  util::Mutex write_mutex{util::lock_rank::Rank::kConnectionWrite,
                          "connection-write"};
  std::atomic<bool> dead{false};
  ChaosRng chaos;
};

struct EstimationServer::RequestJob {
  std::shared_ptr<Connection> conn;
  std::uint64_t seq = 0;
  std::string payload;
  Clock::time_point received{};
  // Drawn on the reader thread at dispatch: the connection's ChaosRng is
  // single-threaded by construction, so pool workers never touch it.
  bool chaos_swap_mid_request = false;
};

#if defined(_WIN32)

// The server is POSIX-only, like the mmap serving path. Constructing one
// on an unsupported platform fails loudly instead of half-working.
EstimationServer::EstimationServer(serve::ModelRegistry& registry,
                                   ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  fail("the estimation server requires POSIX descriptors");
}
EstimationServer::~EstimationServer() = default;
void EstimationServer::set_model(const std::string&, const std::string&) {}
bool EstimationServer::swap_to_latest(const std::string&, std::string*,
                                      std::string*) { return false; }
std::string EstimationServer::current_model_id() const { return {}; }
void EstimationServer::start() { fail("unsupported platform"); }
void EstimationServer::serve_connection_fds(int, int) {}
void EstimationServer::install_signal_handlers() {}
void EstimationServer::begin_shutdown() {}
bool EstimationServer::wait_until_drained() { return true; }
int EstimationServer::run() { return 1; }
StatsReply EstimationServer::stats_snapshot() const { return {}; }
void EstimationServer::accept_loop(int) {}
void EstimationServer::watcher_loop() {}
void EstimationServer::join_threads() {}
void EstimationServer::reap_finished_connections_locked() {}
void EstimationServer::connection_loop(std::shared_ptr<Connection>) {}
bool EstimationServer::serve_one_frame(const std::shared_ptr<Connection>&) {
  return false;
}
void EstimationServer::dispatch_estimate(const std::shared_ptr<Connection>&,
                                         std::uint64_t, std::string,
                                         Clock::time_point) {}
void EstimationServer::run_estimate(const std::shared_ptr<RequestJob>&) {}
EstimateReply EstimationServer::evaluate(const EstimateRequest&,
                                         Clock::time_point, bool) {
  return {};
}
bool EstimationServer::send_frame(const std::shared_ptr<Connection>&,
                                  FrameType, std::uint64_t,
                                  const std::string&) { return false; }
bool EstimationServer::send_error(const std::shared_ptr<Connection>&,
                                  std::uint64_t, ErrorCode,
                                  const std::string&) { return false; }
EstimationServer::SlotSnapshot EstimationServer::resolve_slot(
    const std::string&, std::string*) { return {}; }

#else

EstimationServer::EstimationServer(serve::ModelRegistry& registry,
                                   ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
  util::ignore_sigpipe();
  if (::pipe(wake_pipe_) != 0) fail("cannot create self-pipe: " + errno_text());
  ::fcntl(wake_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_pipe_[1], F_SETFD, FD_CLOEXEC);
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  watcher_ = std::thread([this] { watcher_loop(); });
}

EstimationServer::~EstimationServer() {
  begin_shutdown();
  wait_until_drained();
  // Join the workers BEFORE any member destructs: drain_mutex_/drain_cv_
  // are declared after pool_, so default destruction order would tear
  // them down while a worker can still be inside its post-reply notify.
  pool_.reset();
  int expected = wake_pipe_[1];
  g_signal_pipe.compare_exchange_strong(expected, -1);
  util::close_quietly(wake_pipe_[0]);
  util::close_quietly(wake_pipe_[1]);
}

// --- model routing ----------------------------------------------------------

void EstimationServer::set_model(const std::string& id,
                                 const std::string& model_class) {
  std::shared_ptr<const serve::MappedModel> model = registry_.open(id);
  {
    util::MutexLock lock(slots_mutex_);
    Slot& slot = slots_[model_class];
    slot.model = std::move(model);
    slot.id = id;
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool EstimationServer::swap_to_latest(const std::string& model_class,
                                      std::string* id_out,
                                      std::string* error_out) {
  const std::string latest = registry_.latest();
  if (latest.empty()) {
    if (error_out) *error_out = "registry has no published models";
    return false;
  }
  std::shared_ptr<const serve::MappedModel> model;
  try {
    model = registry_.open(latest);
  } catch (const std::exception& e) {
    // A gc may have raced the resolution; the slot keeps its old model.
    if (error_out) *error_out = e.what();
    return false;
  }
  {
    util::MutexLock lock(slots_mutex_);
    Slot& slot = slots_[model_class];
    // In-flight requests hold their SlotSnapshot's shared_ptr, so the old
    // mapping drains gracefully as they finish.
    slot.model = std::move(model);
    slot.id = latest;
  }
  generation_.fetch_add(1, std::memory_order_acq_rel);
  if (id_out) *id_out = latest;
  return true;
}

std::string EstimationServer::current_model_id() const {
  util::MutexLock lock(slots_mutex_);
  const auto it = slots_.find("");
  return it == slots_.end() ? std::string() : it->second.id;
}

EstimationServer::SlotSnapshot EstimationServer::resolve_slot(
    const std::string& model_class, std::string* error_out) {
  {
    util::MutexLock lock(slots_mutex_);
    const auto it = slots_.find(model_class);
    if (it != slots_.end() && it->second.model) {
      return {it->second.model, it->second.id};
    }
  }
  // First request for this class: lazy-resolve the registry's latest.
  if (!swap_to_latest(model_class, nullptr, error_out)) return {};
  util::MutexLock lock(slots_mutex_);
  const auto it = slots_.find(model_class);
  if (it == slots_.end() || !it->second.model) {
    if (error_out) *error_out = "model slot vanished during resolution";
    return {};
  }
  return {it->second.model, it->second.id};
}

// --- socket transport -------------------------------------------------------

void EstimationServer::start() {
  if (options_.socket_path.empty()) {
    fail("the socket transport needs options.socket_path");
  }
  // The whole body runs under lifecycle_mutex_: started_ is both the check
  // and the commit, so two racing start() calls serialize here and the
  // loser fails cleanly instead of leaking a second listener.
  util::MutexLock lock(lifecycle_mutex_);
  if (started_) fail("already started");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) fail("cannot create socket: " + errno_text());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    util::close_quietly(listen_fd);
    fail("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A stale socket file from a crashed predecessor would make bind fail.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = errno_text();
    util::close_quietly(listen_fd);
    fail("cannot bind " + options_.socket_path + ": " + why);
  }
  if (::listen(listen_fd, 64) != 0) {
    const std::string why = errno_text();
    util::close_quietly(listen_fd);
    fail("cannot listen on " + options_.socket_path + ": " + why);
  }
  started_ = true;
  // The accept thread takes sole ownership of the descriptor: handing it
  // over by value (instead of the old listen_fd_ member) removes the one
  // field two threads wrote without a guard.
  accept_thread_ = std::thread([this, listen_fd] { accept_loop(listen_fd); });
}

void EstimationServer::accept_loop(int listen_fd) {
  util::lock_rank::ScopedThreadLifetime lifetime(accept_token_);
  while (!stop_io_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    // Tick so a shutdown request stops the intake within ~100 ms.
    const util::IoStatus ready = util::wait_readable(listen_fd, 100);
    if (ready == util::IoStatus::kTimeout) continue;
    if (ready != util::IoStatus::kOk) break;
    int fd;
    for (;;) {
      fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0 || errno != EINTR) break;
    }
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM) {
        // Descriptor/memory pressure is transient: closing connections
        // frees capacity, so keep the listener alive instead of
        // permanently refusing service while the process runs on.
        std::this_thread::sleep_for(ms(100));
        continue;
      }
      break;
    }
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    accepted_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(
        fd, fd, /*owns=*/true,
        next_connection_id_.fetch_add(1, std::memory_order_relaxed),
        options_.chaos);
    auto done = std::make_shared<std::atomic<bool>>(false);
    util::MutexLock lock(connections_mutex_);
    reap_finished_connections_locked();
    ConnectionWorker worker;
    worker.done = done;
    worker.token =
        std::make_unique<util::lock_rank::ThreadToken>("server-connection");
    // The token outlives the thread (it rides in connection_threads_ until
    // the join), so the lambda can hold a plain pointer.
    const util::lock_rank::ThreadToken* token = worker.token.get();
    worker.thread = std::thread(
        [this, conn = std::move(conn), done = std::move(done),
         token]() mutable {
          util::lock_rank::ScopedThreadLifetime worker_lifetime(*token);
          connection_loop(std::move(conn));
          done->store(true, std::memory_order_release);
        });
    connection_threads_.push_back(std::move(worker));
  }
  util::close_quietly(listen_fd);
  ::unlink(options_.socket_path.c_str());
}

void EstimationServer::connection_loop(std::shared_ptr<Connection> conn) {
  while (serve_one_frame(conn)) {
  }
}

void EstimationServer::serve_connection_fds(int in_fd, int out_fd) {
  auto conn = std::make_shared<Connection>(
      in_fd, out_fd, /*owns=*/false,
      next_connection_id_.fetch_add(1, std::memory_order_relaxed),
      options_.chaos);
  accepted_connections_.fetch_add(1, std::memory_order_relaxed);
  while (serve_one_frame(conn)) {
  }
}

// --- the frame loop ---------------------------------------------------------

bool EstimationServer::serve_one_frame(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) return false;
  // Idle wait between frames, ticking to observe shutdown. No idle
  // timeout: a quiet client costs one parked thread, not a worker.
  for (;;) {
    if (stop_io_.load(std::memory_order_acquire)) return false;
    const util::IoStatus ready = util::wait_readable(conn->in_fd, 100);
    if (ready == util::IoStatus::kTimeout) continue;
    if (ready != util::IoStatus::kOk) return false;
    break;
  }
  if (conn->chaos.stall_before_read()) {
    chaos_injected_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(ms(options_.chaos.stall_ms));
  }
  // Once a frame starts, the peer has read_timeout_ms to finish it — a
  // client stalled mid-frame is disconnected, never waited on forever.
  unsigned char header_bytes[kFrameHeaderBytes];
  util::IoStatus st = util::read_exact(conn->in_fd, header_bytes,
                                       sizeof header_bytes,
                                       options_.read_timeout_ms);
  if (st != util::IoStatus::kOk) {
    // kEof before any byte is a normal close; mid-header it is a torn
    // frame. Either way no complete frame arrived, so no reply is owed.
    if (st == util::IoStatus::kTimeout) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  FrameHeader header;
  try {
    header = decode_header(header_bytes, options_.limits);
  } catch (const ProtocolError& e) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    // The seq field sits at a fixed offset, so even a rejected header can
    // be answered with a correlated error before the connection closes
    // (the framing is no longer trustworthy after a bad header).
    std::uint64_t seq;
    std::memcpy(&seq, header_bytes + 8, 8);
    send_error(conn, seq, e.code(), e.what());
    return false;
  }
  std::string payload(header.payload_len, '\0');
  if (header.payload_len > 0) {
    st = util::read_exact(conn->in_fd, payload.data(), payload.size(),
                          options_.read_timeout_ms);
    if (st != util::IoStatus::kOk) {
      if (st == util::IoStatus::kTimeout) {
        io_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;  // torn frame: never completed, no reply owed
    }
  }
  const Clock::time_point received = Clock::now();
  if (draining_.load(std::memory_order_acquire)) {
    send_error(conn, header.seq, ErrorCode::kShuttingDown,
               "server is draining");
    return !stop_io_.load(std::memory_order_acquire);
  }
  switch (header.type) {
    case FrameType::kPingRequest: {
      try {
        decode_empty_request(payload);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      return send_frame(conn, FrameType::kPingReply, header.seq, "");
    }
    case FrameType::kStatsRequest: {
      try {
        decode_empty_request(payload);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      return send_frame(
          conn, FrameType::kStatsReply, header.seq,
          encode_stats_reply(stats_snapshot(), options_.limits));
    }
    case FrameType::kSwapRequest: {
      SwapRequest request;
      try {
        request = decode_swap_request(payload, options_.limits);
      } catch (const ProtocolError& e) {
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        return send_error(conn, header.seq, e.code(), e.what());
      }
      std::string id;
      std::string error;
      if (!swap_to_latest(request.model_class, &id, &error)) {
        return send_error(conn, header.seq, ErrorCode::kModelUnavailable,
                          error);
      }
      SwapReply reply;
      reply.model_id = id;
      reply.swap_generation = swap_generation();
      return send_frame(conn, FrameType::kSwapReply, header.seq,
                        encode_swap_reply(reply, options_.limits));
    }
    case FrameType::kEstimateRequest:
      dispatch_estimate(conn, header.seq, std::move(payload), received);
      return true;
    default:
      send_error(conn, header.seq, ErrorCode::kUnknownType,
                 "unknown frame type " +
                     std::to_string(static_cast<unsigned>(header.type)));
      return true;  // framing is intact; the connection survives
  }
}

void EstimationServer::dispatch_estimate(
    const std::shared_ptr<Connection>& conn, std::uint64_t seq,
    std::string payload, Clock::time_point received) {
  estimate_requests_.fetch_add(1, std::memory_order_relaxed);
  // Admission control BEFORE parsing: shedding stays O(1) under a flood.
  bool admitted = false;
  if (conn->chaos.force_overload()) {
    chaos_injected_.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::size_t expected = queued_.load(std::memory_order_relaxed);
    while (expected < options_.max_queue) {
      if (queued_.compare_exchange_weak(expected, expected + 1,
                                        std::memory_order_acq_rel)) {
        admitted = true;
        break;
      }
    }
  }
  if (!admitted) {
    shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, seq, ErrorCode::kOverloaded,
               "queue full (" + std::to_string(options_.max_queue) +
                   " pending requests)");
    return;
  }
  auto job = std::make_shared<RequestJob>();
  job->conn = conn;
  job->seq = seq;
  job->payload = std::move(payload);
  job->received = received;
  job->chaos_swap_mid_request = conn->chaos.swap_mid_request();
  // The future is intentionally dropped: run_estimate catches everything
  // and answers the client itself.
  (void)pool_->submit([this, job] { run_estimate(job); });
}

void EstimationServer::run_estimate(const std::shared_ptr<RequestJob>& job) {
  // Dequeue: active before not-queued, so the drain predicate
  // (queued == 0 && active == 0) never observes a request in neither set.
  active_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  struct DrainGuard {
    EstimationServer* server;
    ~DrainGuard() {
      server->active_.fetch_sub(1, std::memory_order_acq_rel);
      { util::MutexLock lock(server->drain_mutex_); }
      server->drain_cv_.notify_all();
    }
  } guard{this};

  try {
    const EstimateRequest request =
        decode_estimate_request(job->payload, options_.limits);
    const bool has_deadline = request.deadline_ms > 0;
    const std::uint32_t deadline_ms =
        std::min(request.deadline_ms, options_.max_deadline_ms);
    const Clock::time_point deadline = job->received + ms(deadline_ms);
    // Deadline check #1, at dequeue: a request that waited out its budget
    // in the queue is never evaluated.
    if (has_deadline && Clock::now() >= deadline) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      send_error(job->conn, job->seq, ErrorCode::kDeadlineExceeded,
                 "deadline expired while queued");
      return;
    }
    if (job->chaos_swap_mid_request) {
      chaos_injected_.fetch_add(1, std::memory_order_relaxed);
      std::string id;
      std::string error;
      (void)swap_to_latest(request.model_class, &id, &error);
    }
    const EstimateReply reply = evaluate(request, deadline, has_deadline);
    send_frame(job->conn, FrameType::kEstimateReply, job->seq,
               encode_estimate_reply(reply, options_.limits));
  } catch (const ProtocolError& e) {
    malformed_frames_.fetch_add(1, std::memory_order_relaxed);
    send_error(job->conn, job->seq, e.code(), e.what());
  } catch (const std::exception& e) {
    send_error(job->conn, job->seq, ErrorCode::kInternal, e.what());
  }
}

EstimateReply EstimationServer::evaluate(const EstimateRequest& request,
                                         Clock::time_point deadline,
                                         bool has_deadline) {
  SlotSnapshot snapshot;
  if (!request.model_id.empty()) {
    try {
      snapshot.model = registry_.open(request.model_id);
      snapshot.id = request.model_id;
    } catch (const std::exception& e) {
      throw ProtocolError(ErrorCode::kModelUnavailable, e.what());
    }
  } else {
    std::string error;
    snapshot = resolve_slot(request.model_class, &error);
    if (!snapshot.model) {
      throw ProtocolError(ErrorCode::kModelUnavailable, error);
    }
  }

  EstimateReply reply;
  reply.model_id = snapshot.id;
  reply.swap_generation = swap_generation();
  const serve::EvalTables tables = snapshot.model->tables();
  const model::Merge merge = request.merge == 0 ? model::Merge::kTimeWeighted
                                                : model::Merge::kUnweighted;
  reply.results.reserve(request.workload_csvs.size());
  for (std::size_t i = 0; i < request.workload_csvs.size(); ++i) {
    WorkloadResult result;
    // Deadline check #2, between batch slices: workloads the budget no
    // longer covers are reported, not silently dropped.
    if (has_deadline && Clock::now() >= deadline) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      result.status = ErrorCode::kDeadlineExceeded;
      result.error = "deadline expired after " + std::to_string(i) + " of " +
                     std::to_string(request.workload_csvs.size()) +
                     " workload(s)";
      reply.results.push_back(std::move(result));
      continue;
    }
    try {
      std::istringstream in(request.workload_csvs[i]);
      const sampling::Dataset data = sampling::Dataset::load_csv(in);
      const sampling::DatasetView view(data);
      result.samples = view.size();
      const model::Estimate estimate =
          serve::estimate_tables(tables, view, merge);
      result.throughput = estimate.throughput;
      const std::size_t top =
          std::min(estimate.ranking.size(), options_.limits.max_ranking);
      result.ranking.reserve(top);
      for (std::size_t j = 0; j < top; ++j) {
        const model::MetricEstimate& r = estimate.ranking[j];
        result.ranking.push_back(
            {std::string(counters::event_name(r.metric)), r.p_bar,
             static_cast<std::uint64_t>(r.samples)});
      }
    } catch (const std::exception& e) {
      result.status = ErrorCode::kEstimationFailed;
      result.error =
          bounded_message(e.what(), options_.limits.max_error_bytes);
    }
    reply.results.push_back(std::move(result));
  }
  return reply;
}

// --- replies ----------------------------------------------------------------

bool EstimationServer::send_frame(const std::shared_ptr<Connection>& conn,
                                  FrameType type, std::uint64_t seq,
                                  const std::string& payload) {
  std::string frame;
  try {
    frame = encode_frame(type, seq, payload, options_.limits);
  } catch (const ProtocolError&) {
    type = FrameType::kErrorReply;
    ErrorReply fallback;
    fallback.code = ErrorCode::kInternal;
    fallback.message = "reply exceeded the frame limit";
    frame = encode_frame(FrameType::kErrorReply, seq,
                         encode_error_reply(fallback, options_.limits),
                         options_.limits);
  }
  util::MutexLock lock(conn->write_mutex);
  if (conn->dead.load(std::memory_order_acquire)) return false;
  const util::IoStatus st = util::write_all_deadline(
      conn->out_fd, frame.data(), frame.size(), options_.write_timeout_ms);
  if (st != util::IoStatus::kOk) {
    if (st == util::IoStatus::kTimeout) {
      io_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    // One failed/stalled write poisons the stream (the peer would see a
    // torn reply); everything else on this connection is dropped.
    conn->dead.store(true, std::memory_order_release);
    return false;
  }
  if (type == FrameType::kErrorReply) {
    replies_error_.fetch_add(1, std::memory_order_relaxed);
  } else {
    replies_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool EstimationServer::send_error(const std::shared_ptr<Connection>& conn,
                                  std::uint64_t seq, ErrorCode code,
                                  const std::string& message) {
  ErrorReply reply;
  reply.code = code;
  reply.message = bounded_message(message, options_.limits.max_error_bytes);
  return send_frame(conn, FrameType::kErrorReply, seq,
                    encode_error_reply(reply, options_.limits));
}

// --- shutdown ---------------------------------------------------------------

void EstimationServer::install_signal_handlers() {
  g_signal_pipe.store(wake_pipe_[1], std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = spire_forward_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  // Deliberately no SA_RESTART: the EINTR hardening in util/posix_io.h is
  // load-bearing, and signals exercising it keeps it honest.
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  util::ignore_sigpipe();
}

void EstimationServer::watcher_loop() {
  util::lock_rank::ScopedThreadLifetime lifetime(watcher_token_);
  while (!watcher_stop_.load(std::memory_order_acquire)) {
    const util::IoStatus st = util::wait_readable(wake_pipe_[0], 200);
    if (st == util::IoStatus::kOk) {
      char buf[16];
      (void)util::read_retry(wake_pipe_[0], buf, sizeof buf);
      begin_shutdown();
    } else if (st == util::IoStatus::kError) {
      return;
    }
  }
}

void EstimationServer::begin_shutdown() {
  {
    util::MutexLock lock(lifecycle_mutex_);
    if (draining_.load(std::memory_order_acquire)) return;  // idempotent
    // drain_started_ is written before draining_ flips, under the same
    // mutex wait_until_drained reads it under — no waiter can observe
    // draining_ true with an epoch (expired) drain deadline.
    drain_started_ = Clock::now();
    draining_.store(true, std::memory_order_release);
  }
  lifecycle_cv_.notify_all();
  drain_cv_.notify_all();
}

bool EstimationServer::wait_until_drained() {
  // Both predicates read only atomics, never fields guarded by the waited
  // mutex — the one shape where CondVar's predicate overloads and the
  // thread-safety analysis agree (see thread_annotations.h).
  {
    util::MutexLock lock(lifecycle_mutex_);
    lifecycle_cv_.wait(lifecycle_mutex_, [this] {
      return draining_.load(std::memory_order_acquire);
    });
  }
  Clock::time_point deadline;
  {
    util::MutexLock lock(lifecycle_mutex_);
    deadline = drain_started_ + ms(options_.drain_timeout_ms);
  }
  bool clean;
  {
    util::MutexLock lock(drain_mutex_);
    clean = drain_cv_.wait_until(drain_mutex_, deadline, [this] {
      return queued_.load(std::memory_order_acquire) == 0 &&
             active_.load(std::memory_order_acquire) == 0;
    });
  }
  stop_io_.store(true, std::memory_order_release);
  join_threads();
  return clean;
}

int EstimationServer::run() { return wait_until_drained() ? 0 : 1; }

void EstimationServer::join_threads() {
  // Serialized by join_mutex_, NOT connections_mutex_: the accept thread
  // takes connections_mutex_ to register each accepted peer, so joining
  // it while holding that mutex would deadlock shutdown against a racing
  // accept. A second caller blocks here until the first finishes joining.
  util::MutexLock join_lock(join_mutex_);
  if (joined_) return;
  joined_ = true;
  watcher_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    // note_join records held-locks -> accept-thread edges; joining this
    // thread under connections_mutex_ (the PR 6 shutdown deadlock) closes
    // a cycle the validator reports before join() hangs.
    util::lock_rank::note_join(accept_token_);
    accept_thread_.join();
  }
  // The accept thread is gone, so no new workers can appear; swap the
  // list out under the lock and join outside it.
  std::vector<ConnectionWorker> workers;
  {
    util::MutexLock lock(connections_mutex_);
    workers.swap(connection_threads_);
  }
  for (ConnectionWorker& w : workers) {
    if (w.thread.joinable()) {
      util::lock_rank::note_join(*w.token);
      w.thread.join();
    }
  }
  if (watcher_.joinable()) {
    util::lock_rank::note_join(watcher_token_);
    watcher_.join();
  }
}

void EstimationServer::reap_finished_connections_locked() {
  auto it = connection_threads_.begin();
  while (it != connection_threads_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      // The loop has returned, so join() completes without blocking. This
      // join happens under connections_mutex_, which is safe BECAUSE the
      // worker never takes that mutex — per-worker tokens let the rank
      // graph prove exactly that, instead of flagging every under-lock
      // join the way a single shared lifetime node would.
      if (it->thread.joinable()) {
        util::lock_rank::note_join(*it->token);
        it->thread.join();
      }
      it = connection_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- observability ----------------------------------------------------------

StatsReply EstimationServer::stats_snapshot() const {
  StatsReply stats;
  stats.counters = {
      {"accepted_connections",
       accepted_connections_.load(std::memory_order_relaxed)},
      {"active_requests", active_.load(std::memory_order_relaxed)},
      {"chaos_injected", chaos_injected_.load(std::memory_order_relaxed)},
      {"deadline_expired", deadline_expired_.load(std::memory_order_relaxed)},
      {"estimate_requests",
       estimate_requests_.load(std::memory_order_relaxed)},
      {"frames_received", frames_received_.load(std::memory_order_relaxed)},
      {"io_timeouts", io_timeouts_.load(std::memory_order_relaxed)},
      {"malformed_frames", malformed_frames_.load(std::memory_order_relaxed)},
      {"queue_depth", queued_.load(std::memory_order_relaxed)},
      {"replies_error", replies_error_.load(std::memory_order_relaxed)},
      {"replies_ok", replies_ok_.load(std::memory_order_relaxed)},
      {"shed_overloaded", shed_overloaded_.load(std::memory_order_relaxed)},
      {"swap_generation", generation_.load(std::memory_order_relaxed)},
  };
  return stats;
}

#endif  // !_WIN32

}  // namespace spire::server
