// The estimation server's framed wire protocol.
//
// Design center: the parser is the attack surface. A resident server reads
// bytes written by arbitrary clients — torn frames, hostile lengths,
// truncated fields — so every quantity read off the wire is bounded BEFORE
// it sizes an allocation or a read, and every malformed input becomes a
// structured ProtocolError (code + human message) the server turns into an
// error reply instead of dying.
//
// Frame layout (all integers little-endian):
//
//   | u32 payload_len | u8 version | u8 type | u16 reserved | u64 seq |
//   | payload_len bytes of payload                                    |
//
// 16-byte header, then the payload. `payload_len` counts payload bytes only
// and must be <= Limits::max_frame_bytes; `version` must equal
// kProtocolVersion; `seq` is chosen by the requester and echoed verbatim in
// the reply, which is what gives the exactly-one-reply-per-frame contract
// its observable form. `reserved` must be zero (room for flags without a
// version bump).
//
// Payload encoding is the same style as the binary model formats:
// fixed-width little-endian scalars, strings as u32 length + bytes, every
// length checked against a per-field limit and the remaining payload before
// any allocation. Unknown trailing bytes are rejected — a frame must parse
// exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spire::server {

/// v2 added kEstimateBinRequest (binary profiles, pipelined clients); the
/// frame layout and every v1 payload encoding are unchanged, so a v2
/// endpoint still accepts v1 frames (kMinProtocolVersion) — the version
/// byte gates only what the sender may have used, not how to parse it.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Frame types. Requests are < 0x80; every request type has exactly one
/// reply type (its value | 0x80), except that any request may instead be
/// answered with kErrorReply.
enum class FrameType : std::uint8_t {
  kEstimateRequest = 0x01,
  kPingRequest = 0x02,
  kSwapRequest = 0x03,
  kStatsRequest = 0x04,
  kShardsRequest = 0x05,
  kEstimateBinRequest = 0x06,  // v2: binary spire-profile-bin workloads
  kEstimateReply = 0x81,
  kPingReply = 0x82,
  kSwapReply = 0x83,
  kStatsReply = 0x84,
  kShardsReply = 0x85,
  kEstimateBinReply = 0x86,  // v2: same payload encoding as kEstimateReply
  kErrorReply = 0xFF,
};

/// Structured error codes carried by kErrorReply (and per-workload results).
/// Stable on the wire: values are part of the protocol.
enum class ErrorCode : std::uint16_t {
  kOk = 0,
  kMalformedFrame = 1,     // header/payload failed the bounded parser
  kUnsupportedVersion = 2, // version byte != kProtocolVersion
  kFrameTooLarge = 3,      // payload_len over the limit
  kLimitExceeded = 4,      // a per-field limit tripped
  kUnknownType = 5,        // request type the server does not speak
  kOverloaded = 6,         // admission control shed the request
  kDeadlineExceeded = 7,   // deadline expired before/while evaluating
  kModelUnavailable = 8,   // no model resolvable for the request class
  kEstimationFailed = 9,   // evaluation threw (bad CSV, no shared metric...)
  kShuttingDown = 10,      // server is draining; retry elsewhere/later
  kInternal = 11,          // anything else; the message names it
};

const char* error_code_name(ErrorCode code);

/// Thrown by the bounded parser; the server catches it at the frame
/// boundary and answers with a kErrorReply carrying the same code/message.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Hard bounds the parser enforces. Defaults suit the CLI and tests; the
/// server exposes max_frame_bytes as a ServerOptions knob.
struct Limits {
  std::size_t max_frame_bytes = 4u << 20;  // payload bytes per frame
  std::size_t max_class_bytes = 64;        // model-class / model-id strings
  std::size_t max_workloads = 64;          // CSV blobs per estimate request
  std::size_t max_error_bytes = 1024;      // error message strings
  std::size_t max_ranking = 16;            // ranking entries per result
  std::size_t max_stats = 64;              // counters per stats reply
  std::size_t max_name_bytes = 128;        // metric/counter name strings
  std::size_t max_shards = 1024;           // rows per shards reply
  std::size_t max_profile_samples = 1u << 22;  // samples per binary profile
};

/// Parsed frame header.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPingRequest;
  std::uint64_t seq = 0;
};

/// Encodes the 16-byte header. `payload_len` is the caller's problem to
/// keep within limits (encode_frame does).
std::string encode_header(FrameType type, std::uint64_t seq,
                          std::uint32_t payload_len);

/// Same encoding into a caller-provided kFrameHeaderBytes buffer — the
/// allocation-free form the server's scatter-gather reply path uses (the
/// header lives on the stack, the payload is written from its own buffer).
void encode_header_into(FrameType type, std::uint64_t seq,
                        std::uint32_t payload_len,
                        unsigned char out[kFrameHeaderBytes]);

/// Validates and decodes a 16-byte header buffer. Throws ProtocolError
/// (kMalformedFrame / kUnsupportedVersion / kFrameTooLarge) on any defect.
/// Does NOT validate the type value: replies about unknown types need the
/// seq, so the caller checks the type against what it serves.
FrameHeader decode_header(const unsigned char* bytes, const Limits& limits);

/// Header + payload in one buffer, ready to write. Throws ProtocolError
/// (kFrameTooLarge) when the payload exceeds the limit.
std::string encode_frame(FrameType type, std::uint64_t seq,
                         const std::string& payload, const Limits& limits);

// --- request/reply payloads ------------------------------------------------

/// One estimation request: N workload CSVs evaluated against one model.
/// `model_id` selects an explicit registry object (16 hex chars);
/// empty = the server's hot-swappable slot for `model_class` (and the
/// default class when that is empty too). `deadline_ms` is a relative
/// deadline from frame receipt; 0 = none.
struct EstimateRequest {
  std::string model_class;             // <= max_class_bytes
  std::string model_id;                // <= max_class_bytes, "" = latest slot
  std::uint32_t deadline_ms = 0;
  std::uint8_t merge = 0;              // model::Merge as u8 (0/1)
  std::vector<std::string> workload_csvs;  // <= max_workloads entries
};

/// The v2 binary twin of EstimateRequest: workloads travel as
/// spire-profile-bin blobs (serve/profile_bin.h) instead of CSV text. The
/// decoder is zero-copy — `profiles` are string_views INTO the payload
/// buffer, which must outlive the decoded request — and the encoder pads
/// each profile to an 8-aligned offset from payload start, so the server
/// can evaluate span views straight out of the frame it read.
struct EstimateBinRequest {
  std::string model_class;             // <= max_class_bytes
  std::string model_id;                // <= max_class_bytes, "" = latest slot
  std::uint32_t deadline_ms = 0;
  std::uint8_t merge = 0;              // model::Merge as u8 (0/1)
  std::vector<std::string_view> profiles;  // <= max_workloads entries
};

/// Asks the server to re-resolve the registry's latest model into the
/// slot for `model_class` ("" = the default class).
struct SwapRequest {
  std::string model_class;  // <= max_class_bytes
};

/// One ranking entry of a per-workload result.
struct WireRanked {
  std::string metric;  // event name, <= max_name_bytes
  double p_bar = 0.0;
  std::uint64_t samples = 0;
};

/// Per-workload outcome inside an estimate reply. status == kOk means the
/// estimate fields are valid; anything else carries `error` instead (e.g.
/// kDeadlineExceeded for workloads the batch slicer never reached).
struct WorkloadResult {
  ErrorCode status = ErrorCode::kOk;
  std::string error;  // <= max_error_bytes
  std::uint64_t samples = 0;
  double throughput = 0.0;
  std::vector<WireRanked> ranking;  // <= max_ranking entries
};

struct EstimateReply {
  std::string model_id;            // object actually served
  std::uint64_t swap_generation = 0;  // slot generation at evaluation time
  std::vector<WorkloadResult> results;  // one per request workload, in order
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;  // <= max_error_bytes
};

struct SwapReply {
  std::string model_id;  // slot's id after the swap
  std::uint64_t swap_generation = 0;
};

/// Named u64 counters (requests_total, shed_overload, ...), sorted by name.
struct StatsReply {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// One serving shard's state as the router sees it: which model, which
/// class bindings route to it, its queue, and its coalescing counters.
/// `retired` shards are draining after a hot-swap repointed their last
/// binding; they vanish from the listing once fully drained.
struct ShardInfo {
  std::string model_id;                 // <= max_class_bytes
  std::vector<std::string> classes;     // bound class names, sorted;
                                        // <= max_stats entries
  std::uint64_t queue_depth = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t shed = 0;               // rejected: queue full or retired
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;            // coalesced pump rounds
  std::uint64_t max_batch = 0;          // largest round, in requests
  std::uint8_t retired = 0;             // 0/1
};

/// Reply to kShardsRequest (which carries no payload): one row per live or
/// draining shard, sorted by model id.
struct ShardsReply {
  std::vector<ShardInfo> shards;  // <= max_shards entries
};

// Encoders produce payload bytes (frame them with encode_frame); decoders
// run the strict bounded parse and throw ProtocolError on any defect,
// including trailing bytes.
std::string encode_estimate_request(const EstimateRequest& request,
                                    const Limits& limits);
EstimateRequest decode_estimate_request(const std::string& payload,
                                        const Limits& limits);

std::string encode_estimate_bin_request(const EstimateBinRequest& request,
                                        const Limits& limits);
/// Zero-copy: the returned request's `profiles` alias `payload`. A reply
/// to kEstimateBinRequest reuses the kEstimateReply payload encoding
/// (framed as kEstimateBinReply), so cached per-workload result bytes are
/// shared between the text and binary paths.
EstimateBinRequest decode_estimate_bin_request(const std::string& payload,
                                               const Limits& limits);

std::string encode_swap_request(const SwapRequest& request,
                                const Limits& limits);
SwapRequest decode_swap_request(const std::string& payload,
                                const Limits& limits);

/// Ping and stats requests carry no payload; decoding asserts exactly that.
void decode_empty_request(const std::string& payload);

std::string encode_estimate_reply(const EstimateReply& reply,
                                  const Limits& limits);
EstimateReply decode_estimate_reply(const std::string& payload,
                                    const Limits& limits);

std::string encode_error_reply(const ErrorReply& reply, const Limits& limits);
ErrorReply decode_error_reply(const std::string& payload,
                              const Limits& limits);

std::string encode_swap_reply(const SwapReply& reply, const Limits& limits);
SwapReply decode_swap_reply(const std::string& payload, const Limits& limits);

std::string encode_stats_reply(const StatsReply& reply, const Limits& limits);
StatsReply decode_stats_reply(const std::string& payload,
                              const Limits& limits);

std::string encode_shards_reply(const ShardsReply& reply,
                                const Limits& limits);
ShardsReply decode_shards_reply(const std::string& payload,
                                const Limits& limits);

/// Standalone codec for ONE WorkloadResult, byte-compatible with the
/// per-result block inside encode_estimate_reply. This is the estimate
/// memo-cache's value format: the server caches the encoded result, and
/// because encode/decode are exact inverses, a reply assembled from cached
/// bytes is byte-identical to a recompute (DESIGN.md §14).
std::string encode_workload_result(const WorkloadResult& result,
                                   const Limits& limits);
WorkloadResult decode_workload_result(const std::string& payload,
                                      const Limits& limits);

}  // namespace spire::server
