// Piecewise linear functions over the intensity axis.
//
// SPIRE's rooflines are piecewise linear upper bounds P(I). The right-fit's
// horizontal cap introduces jump discontinuities, so the representation is a
// sorted list of closed segments rather than a knot list. Contiguity is
// enforced on construction; at a shared boundary the LEFT segment's value
// wins, which keeps right-region fits non-increasing across upward jumps.
#pragma once

#include <string>
#include <vector>

#include "geom/point.h"

namespace spire::geom {

/// One linear piece over [x0, x1]. x1 may be +infinity, in which case the
/// piece must be horizontal (y1 == y0).
struct LinearPiece {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  /// Value at x; requires x0 <= x <= x1.
  double at(double x) const;

  /// Slope; 0 for horizontal pieces that extend to infinity.
  double slope() const;

  friend bool operator==(const LinearPiece&, const LinearPiece&) = default;
};

/// An ordered, contiguous sequence of linear pieces.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from pieces. Throws std::invalid_argument when pieces are empty,
  /// unsorted, non-contiguous (piece[i].x1 != piece[i+1].x0), degenerate
  /// (x0 >= x1), or an infinite piece is not horizontal / not last.
  explicit PiecewiseLinear(std::vector<LinearPiece> pieces);

  /// Builds a continuous function from knots (x strictly increasing).
  static PiecewiseLinear from_knots(const std::vector<Point>& knots);

  bool empty() const { return pieces_.empty(); }
  const std::vector<LinearPiece>& pieces() const { return pieces_; }

  double domain_min() const;
  double domain_max() const;  // may be +infinity

  /// Evaluates at x. Outside the domain the nearest endpoint value is
  /// returned (clamping), which matches roofline semantics: the bound is
  /// flat beyond observed intensities. Throws std::logic_error when empty.
  double at(double x) const;

  /// True when evaluation never decreases / never increases over the domain
  /// (checks piece slopes and boundary jumps). Used by invariant tests.
  bool non_decreasing() const;
  bool non_increasing() const;

  /// True when the function is continuous at every interior boundary.
  bool continuous() const;

  /// Samples n points across [lo, hi] for plotting, inserting a pair of
  /// points around each jump so discontinuities render as steps.
  std::vector<Point> sample(double lo, double hi, int n) const;

  /// Compact human-readable description, one piece per line.
  std::string describe() const;

  friend bool operator==(const PiecewiseLinear&, const PiecewiseLinear&) =
      default;

 private:
  std::vector<LinearPiece> pieces_;
};

}  // namespace spire::geom
