// Convex hull construction for SPIRE's left-region fit (paper Fig. 5).
//
// The fit is a gift-wrapping (Jarvis-march) walk: starting from the origin,
// repeatedly step to the sample strictly up-and-right of the current point
// with the maximum slope from it, until the globally highest-throughput
// sample (the apex) is reached. The resulting chain is increasing and
// concave-down, and lies on-or-above every sample with x <= x(apex).
#pragma once

#include <vector>

#include "geom/point.h"

namespace spire::geom {

/// Returns the hull chain [(0,0), p1, ..., apex] over `points`, where apex
/// is the maximum-y point (ties broken toward smaller x). Points must have
/// finite, non-negative coordinates. Returns just {(0,0)} when `points` is
/// empty or no point lies strictly up-and-right of the origin.
///
/// Collinear intermediate points are skipped: on slope ties the walk takes
/// the farthest point, so consecutive chain slopes strictly decrease.
std::vector<Point> left_roofline_hull(const std::vector<Point>& points);

/// Classic upper convex hull of a point set, sorted by x (Andrew monotone
/// chain). Used as a test oracle and by the classic roofline module.
std::vector<Point> upper_hull(std::vector<Point> points);

}  // namespace spire::geom
