// 2-D point primitives shared by the fitting algorithms.
//
// Throughout the roofline code the x axis is an operational intensity (I_x)
// and the y axis a throughput (P); x may be +infinity for samples whose
// metric count is zero (I_x = W / M_x with M_x = 0).
#pragma once

#include <cmath>
#include <limits>

namespace spire::geom {

/// A point in the (intensity, throughput) plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Slope of the line through a and b; +-infinity for vertical lines.
inline double slope(const Point& a, const Point& b) {
  return (b.y - a.y) / (b.x - a.x);
}

/// True when x is finite (samples at I = infinity need special casing).
inline bool finite_x(const Point& p) { return std::isfinite(p.x); }

/// Cross product (b - a) x (c - a); > 0 when c is left of the a->b ray.
inline double cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace spire::geom
