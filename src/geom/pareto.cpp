#include "geom/pareto.h"

#include <algorithm>

#include "util/contract.h"

namespace spire::geom {

std::vector<Point> pareto_front_max_xy(const std::vector<Point>& points) {
  std::vector<Point> sorted = points;
  // Descending x; for equal x keep the largest y first.
  std::sort(sorted.begin(), sorted.end(), [](const Point& a, const Point& b) {
    return a.x > b.x || (a.x == b.x && a.y > b.y);
  });

  std::vector<Point> front;
  double best_y = -kInfinity;
  double last_x = kInfinity;
  bool have_last = false;
  for (const auto& p : sorted) {
    if (have_last && p.x == last_x) continue;  // dominated by equal-x, higher-y
    if (p.y > best_y) {
      front.push_back(p);
      best_y = p.y;
    }
    last_x = p.x;
    have_last = true;
  }

  // Documented postcondition: x strictly decreases, y strictly increases.
#if SPIRE_DCHECK_ENABLED
  for (std::size_t i = 1; i < front.size(); ++i) {
    SPIRE_DCHECK(front[i].x < front[i - 1].x && front[i].y > front[i - 1].y,
                 "pareto: front not strictly ordered at index ", i, ": (",
                 front[i - 1].x, ", ", front[i - 1].y, ") -> (", front[i].x,
                 ", ", front[i].y, ")");
  }
#endif
  return front;
}

bool is_dominated(const Point& p, const std::vector<Point>& points) {
  for (const auto& q : points) {
    if (q == p) continue;
    if (q.x >= p.x && q.y >= p.y) return true;
  }
  return false;
}

}  // namespace spire::geom
