#include "geom/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/contract.h"

namespace spire::geom {

double LinearPiece::at(double x) const {
  if (!std::isfinite(x1)) return y0;  // horizontal tail
  if (x1 == x0) return y0;
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double LinearPiece::slope() const {
  if (!std::isfinite(x1)) return 0.0;
  return (y1 - y0) / (x1 - x0);
}

PiecewiseLinear::PiecewiseLinear(std::vector<LinearPiece> pieces)
    : pieces_(std::move(pieces)) {
  SPIRE_ASSERT(!pieces_.empty(), "piecewise: no pieces");
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const auto& p = pieces_[i];
    SPIRE_ASSERT(p.x0 < p.x1, "piecewise: degenerate piece ", i, ": x0=",
                 p.x0, ", x1=", p.x1);
    SPIRE_ASSERT(
        std::isfinite(p.x0) && std::isfinite(p.y0) && std::isfinite(p.y1),
        "piecewise: non-finite coordinates in piece ", i, ": (", p.x0, ", ",
        p.y0, ") -> (", p.x1, ", ", p.y1, ")");
    if (!std::isfinite(p.x1)) {
      SPIRE_ASSERT(p.y1 == p.y0,
                   "piecewise: infinite piece must be horizontal, got y0=",
                   p.y0, ", y1=", p.y1);
      SPIRE_ASSERT(i + 1 == pieces_.size(),
                   "piecewise: infinite piece must be last, found at index ",
                   i, " of ", pieces_.size());
    }
    if (i > 0) {
      SPIRE_ASSERT(pieces_[i - 1].x1 == p.x0,
                   "piecewise: pieces not contiguous at index ", i,
                   ": previous x1=", pieces_[i - 1].x1, ", next x0=", p.x0);
    }
  }
}

PiecewiseLinear PiecewiseLinear::from_knots(const std::vector<Point>& knots) {
  SPIRE_ASSERT(knots.size() >= 2, "piecewise: need at least 2 knots, got ",
               knots.size());
  std::vector<LinearPiece> pieces;
  pieces.reserve(knots.size() - 1);
  for (std::size_t i = 0; i + 1 < knots.size(); ++i) {
    pieces.push_back({knots[i].x, knots[i].y, knots[i + 1].x, knots[i + 1].y});
  }
  return PiecewiseLinear(std::move(pieces));
}

double PiecewiseLinear::domain_min() const {
  SPIRE_ASSERT(!pieces_.empty(), "piecewise: empty");
  return pieces_.front().x0;
}

double PiecewiseLinear::domain_max() const {
  SPIRE_ASSERT(!pieces_.empty(), "piecewise: empty");
  return pieces_.back().x1;
}

double PiecewiseLinear::at(double x) const {
  SPIRE_ASSERT(!pieces_.empty(), "piecewise: empty");
  if (x <= pieces_.front().x0) return pieces_.front().y0;
  // First piece whose right edge reaches x; the left segment wins at shared
  // boundaries (see header).
  const auto it = std::lower_bound(
      pieces_.begin(), pieces_.end(), x,
      [](const LinearPiece& p, double v) { return p.x1 < v; });
  if (it == pieces_.end()) return pieces_.back().y1;
  return it->at(x);
}

bool PiecewiseLinear::non_decreasing() const {
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (pieces_[i].y1 < pieces_[i].y0) return false;
    if (i > 0 && pieces_[i].y0 < pieces_[i - 1].y1) return false;
  }
  return true;
}

bool PiecewiseLinear::non_increasing() const {
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (pieces_[i].y1 > pieces_[i].y0) return false;
    if (i > 0 && pieces_[i].y0 > pieces_[i - 1].y1) return false;
  }
  return true;
}

bool PiecewiseLinear::continuous() const {
  for (std::size_t i = 1; i < pieces_.size(); ++i) {
    if (pieces_[i].y0 != pieces_[i - 1].y1) return false;
  }
  return true;
}

std::vector<Point> PiecewiseLinear::sample(double lo, double hi, int n) const {
  std::vector<Point> out;
  if (n < 2 || pieces_.empty() || !(lo < hi)) return out;
  for (int i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    out.push_back({x, at(x)});
  }
  // Add explicit step points at interior discontinuities inside [lo, hi].
  for (std::size_t i = 1; i < pieces_.size(); ++i) {
    if (pieces_[i].y0 == pieces_[i - 1].y1) continue;
    const double x = pieces_[i].x0;
    if (x <= lo || x >= hi) continue;
    out.push_back({x, pieces_[i - 1].y1});
    out.push_back({std::nextafter(x, hi), pieces_[i].y0});
  }
  std::sort(out.begin(), out.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  return out;
}

std::string PiecewiseLinear::describe() const {
  std::ostringstream os;
  os.precision(6);
  for (const auto& p : pieces_) {
    os << "[" << p.x0 << ", " << p.x1 << "] : " << p.y0 << " -> " << p.y1
       << "  (slope " << p.slope() << ")\n";
  }
  return os.str();
}

}  // namespace spire::geom
