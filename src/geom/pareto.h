// Pareto front extraction for SPIRE's right-region fit (paper Fig. 6).
//
// The right fit only considers samples that are Pareto-optimal when jointly
// maximizing intensity (x) and throughput (y); all other samples lie strictly
// below-left of a front sample and cannot touch a valid decreasing fit.
#pragma once

#include <vector>

#include "geom/point.h"

namespace spire::geom {

/// Returns the Pareto front of `points` under joint maximization of x and y,
/// sorted by DESCENDING x (so ascending y). Points with x = +infinity are
/// allowed and, when present, the maximal-y one leads the front. Exact
/// duplicates collapse to a single entry.
///
/// Postconditions on the result: x strictly decreases, y strictly increases.
std::vector<Point> pareto_front_max_xy(const std::vector<Point>& points);

/// True when `p` is dominated by some point in `points` (some q != p with
/// q.x >= p.x and q.y >= p.y). Brute-force; used as a test oracle.
bool is_dominated(const Point& p, const std::vector<Point>& points);

}  // namespace spire::geom
