#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contract.h"

namespace spire::geom {

std::vector<Point> left_roofline_hull(const std::vector<Point>& points) {
  for (const auto& p : points) {
    SPIRE_ASSERT(
        std::isfinite(p.x) && std::isfinite(p.y) && p.x >= 0.0 && p.y >= 0.0,
        "hull: points must be finite, non-negative, got (", p.x, ", ", p.y,
        ")");
  }

  // Apex: maximum y, ties toward smaller x so the left region is as narrow
  // as possible (same-height samples to the right belong to the right fit).
  const Point* apex = nullptr;
  for (const auto& p : points) {
    if (apex == nullptr || p.y > apex->y || (p.y == apex->y && p.x < apex->x)) {
      apex = &p;
    }
  }

  std::vector<Point> chain{{0.0, 0.0}};
  if (apex == nullptr || apex->y <= 0.0) return chain;

  Point cur = chain.back();
  while (!(cur == *apex)) {
    // Candidates strictly up-and-right of the current point. A candidate at
    // the same x counts as slope +infinity (only reachable from the origin).
    const Point* best = nullptr;
    double best_slope = -kInfinity;
    for (const auto& p : points) {
      if (p.y <= cur.y || p.x < cur.x) continue;
      const double s = p.x > cur.x ? slope(cur, p) : kInfinity;
      // On ties prefer the farther point (larger x, then larger y) so that
      // collinear middles are skipped in one step.
      if (best == nullptr || s > best_slope ||
          (s == best_slope && (p.x > best->x || (p.x == best->x && p.y > best->y)))) {
        best = &p;
        best_slope = s;
      }
    }
    // `best` cannot be null while cur != apex: the apex itself is strictly
    // up-and-right of every chain point (chain y strictly ascends below it).
    if (best == nullptr) break;
    chain.push_back(*best);
    cur = *best;
  }

  // Fig. 5 postconditions: the chain rises strictly and its slopes strictly
  // decrease (concave-down). Cheap relative to the walk itself, but checked
  // builds only — the walk guarantees this by construction.
#if SPIRE_DCHECK_ENABLED
  for (std::size_t i = 1; i < chain.size(); ++i) {
    SPIRE_DCHECK(chain[i].y > chain[i - 1].y && chain[i].x >= chain[i - 1].x,
                 "hull: chain not increasing at knot ", i, ": (",
                 chain[i - 1].x, ", ", chain[i - 1].y, ") -> (", chain[i].x,
                 ", ", chain[i].y, ")");
    if (i >= 2 && chain[i].x > chain[i - 1].x &&
        chain[i - 1].x > chain[i - 2].x) {
      const double s_prev = slope(chain[i - 2], chain[i - 1]);
      const double s_next = slope(chain[i - 1], chain[i]);
      const double tol = 1e-9 * std::max(1.0, std::abs(s_prev));
      SPIRE_DCHECK(s_next <= s_prev + tol,
                   "hull: chain not concave-down at knot ", i, ": slope ",
                   s_prev, " then ", s_next);
    }
  }
#endif
  return chain;
}

std::vector<Point> upper_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() <= 2) return points;

  std::vector<Point> hull;
  for (const auto& p : points) {
    // Pop while the turn through the last two hull points is not clockwise.
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), p) >= 0.0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace spire::geom
