#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spire::geom {

std::vector<Point> left_roofline_hull(const std::vector<Point>& points) {
  for (const auto& p : points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || p.x < 0.0 || p.y < 0.0) {
      throw std::invalid_argument("hull: points must be finite, non-negative");
    }
  }

  // Apex: maximum y, ties toward smaller x so the left region is as narrow
  // as possible (same-height samples to the right belong to the right fit).
  const Point* apex = nullptr;
  for (const auto& p : points) {
    if (apex == nullptr || p.y > apex->y || (p.y == apex->y && p.x < apex->x)) {
      apex = &p;
    }
  }

  std::vector<Point> chain{{0.0, 0.0}};
  if (apex == nullptr || apex->y <= 0.0) return chain;

  Point cur = chain.back();
  while (!(cur == *apex)) {
    // Candidates strictly up-and-right of the current point. A candidate at
    // the same x counts as slope +infinity (only reachable from the origin).
    const Point* best = nullptr;
    double best_slope = -kInfinity;
    for (const auto& p : points) {
      if (p.y <= cur.y || p.x < cur.x) continue;
      const double s = p.x > cur.x ? slope(cur, p) : kInfinity;
      // On ties prefer the farther point (larger x, then larger y) so that
      // collinear middles are skipped in one step.
      if (best == nullptr || s > best_slope ||
          (s == best_slope && (p.x > best->x || (p.x == best->x && p.y > best->y)))) {
        best = &p;
        best_slope = s;
      }
    }
    // `best` cannot be null while cur != apex: the apex itself is strictly
    // up-and-right of every chain point (chain y strictly ascends below it).
    if (best == nullptr) break;
    chain.push_back(*best);
    cur = *best;
  }
  return chain;
}

std::vector<Point> upper_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() <= 2) return points;

  std::vector<Point> hull;
  for (const auto& p : points) {
    // Pop while the turn through the last two hull points is not clockwise.
    while (hull.size() >= 2 &&
           cross(hull[hull.size() - 2], hull.back(), p) >= 0.0) {
      hull.pop_back();
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace spire::geom
