#include "roofline/roofline.h"

#include <algorithm>
#include <stdexcept>

namespace spire::roofline {

RooflineModel::RooflineModel(double pi, double beta) : pi_(pi), beta_(beta) {
  if (pi <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("roofline: pi and beta must be positive");
  }
}

void RooflineModel::add_ceiling(Ceiling ceiling) {
  if (ceiling.value <= 0.0) {
    throw std::invalid_argument("roofline: ceiling must be positive");
  }
  ceilings_.push_back(std::move(ceiling));
}

double RooflineModel::attainable(double intensity) const {
  if (intensity < 0.0) throw std::invalid_argument("roofline: negative I");
  return std::min(pi_, beta_ * intensity);
}

double RooflineModel::attainable_under(double intensity,
                                       const Ceiling& ceiling) const {
  const double pi = ceiling.is_compute ? std::min(pi_, ceiling.value) : pi_;
  const double beta = ceiling.is_compute ? beta_ : std::min(beta_, ceiling.value);
  return std::min(pi, beta * intensity);
}

}  // namespace spire::roofline
