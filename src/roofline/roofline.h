// The conventional roofline model (Williams et al., CACM 2009) — the
// baseline SPIRE builds upon, reproduced for the paper's Fig. 2.
//
// P(I) = min(pi, beta * I), optionally with extra compute/memory ceilings
// (scalar-only execution, DRAM-only bandwidth, ...). Units are generic:
// the paper's figure uses FLOP/s over FLOP/byte; our instantiation on the
// simulated core uses IPC over instructions-per-DRAM-byte.
#pragma once

#include <string>
#include <vector>

namespace spire::roofline {

/// One additional ceiling below the main roof.
struct Ceiling {
  std::string name;
  double value = 0.0;  // throughput cap (compute) or bandwidth (memory)
  bool is_compute = true;
};

/// A measured application point for plotting.
struct AppPoint {
  std::string name;
  double intensity = 0.0;
  double performance = 0.0;
};

class RooflineModel {
 public:
  /// pi: peak throughput; beta: peak memory bandwidth (both > 0).
  RooflineModel(double pi, double beta);

  void add_ceiling(Ceiling ceiling);

  double peak_throughput() const { return pi_; }
  double peak_bandwidth() const { return beta_; }
  const std::vector<Ceiling>& ceilings() const { return ceilings_; }

  /// Attainable performance at intensity I: min(pi, beta * I).
  double attainable(double intensity) const;

  /// Attainable under a specific ceiling combination: compute ceilings cap
  /// pi, memory ceilings cap beta.
  double attainable_under(double intensity, const Ceiling& ceiling) const;

  /// The ridge point pi / beta where the model transitions from
  /// memory-bound to compute-bound.
  double ridge_intensity() const { return pi_ / beta_; }

  /// True when a workload at `intensity` is memory-bound (left of ridge).
  bool memory_bound(double intensity) const {
    return intensity < ridge_intensity();
  }

 private:
  double pi_;
  double beta_;
  std::vector<Ceiling> ceilings_;
};

}  // namespace spire::roofline
