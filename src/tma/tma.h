// Top-Down Microarchitecture Analysis (Yasin, ISPASS 2014).
//
// This is the counter-based baseline the paper validates SPIRE against
// (VTune implements the same method). Level 1 splits the core's issue
// slots into Retiring / Front-End Bound / Bad Speculation / Back-End
// Bound; level 2 refines front-end into latency vs bandwidth, bad
// speculation into mispredicts vs machine clears, and back-end into
// memory vs core (with a cache-level breakdown of memory).
#pragma once

#include <string>

#include "counters/counter_set.h"
#include "counters/events.h"

namespace spire::tma {

/// Level-1 slot fractions; the four categories sum to ~1.
struct Level1 {
  double retiring = 0.0;
  double front_end_bound = 0.0;
  double bad_speculation = 0.0;
  double back_end_bound = 0.0;
};

/// Level-2 refinements; each group's members sum to its level-1 parent.
struct Level2 {
  double fe_latency = 0.0;
  double fe_bandwidth = 0.0;
  double branch_mispredicts = 0.0;
  double machine_clears = 0.0;
  double memory_bound = 0.0;
  double core_bound = 0.0;
};

/// Level-3-style memory breakdown (fractions of total slots).
struct MemoryBreakdown {
  double l1_bound = 0.0;
  double l2_bound = 0.0;
  double l3_bound = 0.0;
  double dram_bound = 0.0;
  double store_bound = 0.0;
};

struct Result {
  Level1 level1;
  Level2 level2;
  MemoryBreakdown memory;
  double ipc = 0.0;

  /// The dominant non-retiring category (the paper Table I color), or
  /// kRetiring when useful work dominates everything else.
  counters::TmaArea main_bottleneck() const;

  /// Multi-line human-readable report.
  std::string describe() const;
};

/// Analyzes a counter delta (one measurement window or a whole run).
/// Requires a nonzero cycle count; throws std::invalid_argument otherwise.
Result analyze(const counters::CounterSet& delta, int slots_per_cycle = 4);

}  // namespace spire::tma
