#include "tma/tma.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/table.h"

namespace spire::tma {

using counters::CounterSet;
using counters::Event;
using counters::TmaArea;

Result analyze(const CounterSet& delta, int slots_per_cycle) {
  const auto cycles = static_cast<double>(delta.get(Event::kCpuClkUnhaltedThread));
  if (cycles <= 0.0) throw std::invalid_argument("tma: zero-cycle window");
  const double slots = slots_per_cycle * cycles;

  const auto get = [&](Event e) { return static_cast<double>(delta.get(e)); };

  Result r;
  r.ipc = get(Event::kInstRetiredAny) / cycles;

  // --- Level 1 (Yasin's slot accounting) --------------------------------
  const double retired_slots = get(Event::kUopsRetiredRetireSlots);
  const double issued = get(Event::kUopsIssuedAny);
  const double recovery = get(Event::kIntMiscRecoveryCycles);
  const double not_delivered = get(Event::kIdqUopsNotDeliveredCore);

  r.level1.retiring = retired_slots / slots;
  r.level1.front_end_bound = not_delivered / slots;
  r.level1.bad_speculation =
      std::max(0.0, (issued - retired_slots + slots_per_cycle * recovery) / slots);
  r.level1.back_end_bound =
      std::max(0.0, 1.0 - r.level1.retiring - r.level1.front_end_bound -
                        r.level1.bad_speculation);

  // --- Level 2: front-end latency vs bandwidth --------------------------
  // Latency component: cycles fetch delivered nothing because it was
  // waiting (I-cache, ITLB, decode-switch penalties, re-steers).
  const double fetch_latency_cycles =
      get(Event::kIcache16bIfdataStall) + get(Event::kItlbMissesWalkPending) +
      get(Event::kDsb2MiteSwitchesPenaltyCycles) + get(Event::kIldStallLcp) +
      5.0 * get(Event::kBaclearsAny);
  r.level2.fe_latency =
      std::min(r.level1.front_end_bound, fetch_latency_cycles / cycles);
  r.level2.fe_bandwidth = r.level1.front_end_bound - r.level2.fe_latency;

  // --- Level 2: bad speculation split -----------------------------------
  const double mispredicts = get(Event::kBrMispRetiredAllBranches);
  const double clears = get(Event::kMachineClearsCount);
  const double events = mispredicts + clears;
  const double mispredict_share = events > 0.0 ? mispredicts / events : 1.0;
  r.level2.branch_mispredicts = r.level1.bad_speculation * mispredict_share;
  r.level2.machine_clears = r.level1.bad_speculation - r.level2.branch_mispredicts;

  // --- Level 2: memory vs core ------------------------------------------
  const double stalls_total = get(Event::kCycleActivityStallsTotal);
  const double stalls_mem = get(Event::kCycleActivityStallsMemAny) +
                            get(Event::kExeActivityBoundOnStores);
  const double mem_share =
      stalls_total > 0.0 ? std::min(1.0, stalls_mem / stalls_total) : 0.0;
  r.level2.memory_bound = r.level1.back_end_bound * mem_share;
  r.level2.core_bound = r.level1.back_end_bound - r.level2.memory_bound;

  // --- Memory breakdown ---------------------------------------------------
  const double stalls_l1d = get(Event::kCycleActivityStallsL1dMiss);
  const double stalls_l2 = get(Event::kCycleActivityStallsL2Miss);
  const double stalls_l3 = get(Event::kCycleActivityStallsL3Miss);
  const double bound_stores = get(Event::kExeActivityBoundOnStores);
  // Nested stall counters peel into exclusive levels.
  const double l1_cycles = std::max(0.0, stalls_mem - bound_stores - stalls_l1d);
  const double l2_cycles = std::max(0.0, stalls_l1d - stalls_l2);
  const double l3_cycles = std::max(0.0, stalls_l2 - stalls_l3);
  const double dram_cycles = stalls_l3;
  const double mem_total =
      l1_cycles + l2_cycles + l3_cycles + dram_cycles + bound_stores;
  if (mem_total > 0.0) {
    const double unit = r.level2.memory_bound / mem_total;
    r.memory.l1_bound = l1_cycles * unit;
    r.memory.l2_bound = l2_cycles * unit;
    r.memory.l3_bound = l3_cycles * unit;
    r.memory.dram_bound = dram_cycles * unit;
    r.memory.store_bound = bound_stores * unit;
  }
  return r;
}

TmaArea Result::main_bottleneck() const {
  // The dominant performance-loss category; "retiring" wins only when no
  // loss category comes within a whisker of it.
  struct Entry {
    TmaArea area;
    double value;
  };
  const Entry losses[] = {
      {TmaArea::kFrontEnd, level1.front_end_bound},
      {TmaArea::kBadSpeculation, level1.bad_speculation},
      {TmaArea::kMemory, level2.memory_bound},
      {TmaArea::kCore, level2.core_bound},
  };
  const Entry* best = &losses[0];
  for (const Entry& e : losses) {
    if (e.value > best->value) best = &e;
  }
  if (level1.retiring > best->value * 2.0) return TmaArea::kRetiring;
  return best->area;
}

std::string Result::describe() const {
  std::ostringstream os;
  os << "IPC " << util::format_fixed(ipc, 3) << "\n"
     << "  Retiring        " << util::format_percent(level1.retiring) << "\n"
     << "  Front-End Bound " << util::format_percent(level1.front_end_bound)
     << "  (latency " << util::format_percent(level2.fe_latency)
     << ", bandwidth " << util::format_percent(level2.fe_bandwidth) << ")\n"
     << "  Bad Speculation " << util::format_percent(level1.bad_speculation)
     << "  (mispredicts " << util::format_percent(level2.branch_mispredicts)
     << ", clears " << util::format_percent(level2.machine_clears) << ")\n"
     << "  Back-End Bound  " << util::format_percent(level1.back_end_bound)
     << "  (memory " << util::format_percent(level2.memory_bound) << ", core "
     << util::format_percent(level2.core_bound) << ")\n"
     << "    Memory: L1 " << util::format_percent(memory.l1_bound) << ", L2 "
     << util::format_percent(memory.l2_bound) << ", L3 "
     << util::format_percent(memory.l3_bound) << ", DRAM "
     << util::format_percent(memory.dram_bound) << ", stores "
     << util::format_percent(memory.store_bound) << "\n";
  return os.str();
}

}  // namespace spire::tma
