// Signal- and timeout-hardened POSIX I/O primitives.
//
// Raw read/write/open can fail with EINTR whenever a signal lands, and a
// long-running process (the estimation server, a registry publisher under a
// profiler sending SIGPROF) WILL take signals mid-syscall. Every raw
// descriptor operation in the repository goes through these wrappers so a
// stray signal never turns into a spurious "cannot open" or a short write
// published as a corrupt object.
//
// Two layers:
//  * blocking wrappers (open_retry / read_retry / write_all) — retry EINTR
//    and short transfers, for filesystem work (registry publish, mmap open);
//  * deadline wrappers (read_exact / write_all with a timeout, wait_readable)
//    — poll-gated so one stalled peer can never wedge a server worker, for
//    socket/pipe transports.
//
// SIGPIPE: a peer that closes mid-write kills the whole process by default.
// ignore_sigpipe() opts out once, process-wide; writes then fail with EPIPE
// and the caller handles it like any other I/O error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace spire::util {

/// Outcome of a deadline-gated transfer.
enum class IoStatus {
  kOk,       // transferred exactly the requested bytes
  kEof,      // peer closed before the requested bytes arrived
  kTimeout,  // deadline expired first
  kError,    // errno-level failure (connection reset, bad descriptor, ...)
};

const char* io_status_name(IoStatus status);

/// open(2) retrying EINTR. Returns the descriptor or -1 (errno set).
int open_retry(const char* path, int flags, unsigned mode = 0);

/// read(2) retrying EINTR. Semantics otherwise identical to read(2):
/// returns bytes read (0 = EOF) or -1 (errno set).
long read_retry(int fd, void* buf, std::size_t count);

/// Writes all `count` bytes, retrying EINTR and short writes. Returns true
/// when every byte was written; false on the first hard error (errno set).
bool write_all(int fd, const void* buf, std::size_t count);

/// close(2) without an EINTR retry loop: on Linux the descriptor is gone
/// even when close reports EINTR, and retrying can close a descriptor
/// another thread just opened. This exists so call sites document intent.
void close_quietly(int fd);

/// Installs SIG_IGN for SIGPIPE once (idempotent, thread-safe). Long-running
/// servers call this before writing to sockets; a closed peer then surfaces
/// as EPIPE instead of killing the process.
void ignore_sigpipe();

/// Blocks until `fd` is readable, at most `timeout_ms` (< 0 = forever,
/// 0 = immediate poll). EINTR is retried with the remaining budget.
IoStatus wait_readable(int fd, int timeout_ms);

/// Reads exactly `count` bytes with a per-call deadline: every wait for more
/// data is poll-gated on the remaining budget, so a peer that stalls
/// mid-frame costs at most `timeout_ms`, never a wedged thread. A timeout
/// with partial data already consumed still returns kTimeout (the stream is
/// unusable either way). `timeout_ms < 0` waits forever.
IoStatus read_exact(int fd, void* buf, std::size_t count, int timeout_ms);

/// Writes exactly `count` bytes with a per-call deadline, poll-gated like
/// read_exact. kEof reports a peer that closed (EPIPE/ECONNRESET).
IoStatus write_all_deadline(int fd, const void* buf, std::size_t count,
                            int timeout_ms);

/// One gather-write buffer (the platform-neutral face of struct iovec).
struct ConstBuffer {
  const void* data = nullptr;
  std::size_t size = 0;
};

/// Scatter-gather write: every byte of every buffer, in order, with a
/// per-call deadline. One writev(2) submits all buffers per wakeup, so a
/// framed reply (header + payload living in different buffers) goes out
/// without being copied into one contiguous allocation first. `buffers`
/// may be clobbered (partial-write bookkeeping edits it in place).
IoStatus writev_all_deadline(int fd, ConstBuffer* buffers, std::size_t count,
                             int timeout_ms);

}  // namespace spire::util
