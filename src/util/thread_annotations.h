// The machine-checked concurrency contract (static half).
//
// Clang's thread-safety analysis (-Wthread-safety) proves, at compile
// time, that every field marked SPIRE_GUARDED_BY is only touched with its
// mutex held, that every SPIRE_REQUIRES method is only called under the
// right lock, and that SPIRE_EXCLUDES methods are never entered with it
// held. The macros expand to Clang capability attributes and to nothing
// on other compilers, so GCC builds are unaffected; the gate build
// (cmake -DSPIRE_THREAD_SAFETY=ON under clang++) turns any violation into
// a hard compile error. See DESIGN.md §13 for conventions and the
// tests/compile_fail/ fixtures for what the gate rejects.
//
// The annotated wrappers below — util::Mutex, util::MutexLock,
// util::CondVar — are the repository's ONLY sanctioned locking
// vocabulary outside src/util/: raw std::mutex/std::lock_guard carry no
// capability attributes and no lock rank, so using them would silently
// opt out of both halves of the contract. Every util::Mutex declares a
// lock_rank::Rank; in Debug / SPIRE_CHECKED builds the runtime validator
// (util/lock_rank.h) enforces the rank order and detects
// join-under-lock cycles the static analysis cannot see.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lock_rank.h"

#if defined(__clang__)
#define SPIRE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SPIRE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in errors).
#define SPIRE_CAPABILITY(x) SPIRE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires in its ctor and releases in its dtor.
#define SPIRE_SCOPED_CAPABILITY SPIRE_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define SPIRE_GUARDED_BY(x) SPIRE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer) is protected by `x`.
#define SPIRE_PT_GUARDED_BY(x) SPIRE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Static lock-order declaration between mutex members; checked under
/// -Wthread-safety-beta and mirrored dynamically by lock_rank ranks.
#define SPIRE_ACQUIRED_BEFORE(...) \
  SPIRE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SPIRE_ACQUIRED_AFTER(...) \
  SPIRE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Caller must hold the listed capabilities (exclusively).
#define SPIRE_REQUIRES(...) \
  SPIRE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires
/// them itself, or would deadlock / invert the rank order if entered
/// with them held).
#define SPIRE_EXCLUDES(...) \
  SPIRE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires / releases the capability (no argument = `this`).
#define SPIRE_ACQUIRE(...) \
  SPIRE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SPIRE_RELEASE(...) \
  SPIRE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire and returns `ret` on success.
#define SPIRE_TRY_ACQUIRE(ret, ...) \
  SPIRE_THREAD_ANNOTATION_(try_acquire_capability(ret __VA_OPT__(, ) __VA_ARGS__))

/// Function returns a reference to the capability guarding something.
#define SPIRE_RETURN_CAPABILITY(x) SPIRE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for code the analysis cannot model. Every use must carry
/// a comment explaining why the access is in fact safe.
#define SPIRE_NO_THREAD_SAFETY_ANALYSIS \
  SPIRE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace spire::util {

/// std::mutex with a capability attribute (so Clang can prove guarded
/// accesses) and a declared lock rank (so Debug/SPIRE_CHECKED builds can
/// prove the acquisition order). Every mutex in the tree states its slot
/// in the DESIGN.md §13 rank table at construction.
class SPIRE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(lock_rank::Rank rank = lock_rank::Rank::kLeaf,
                 const char* name = "mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPIRE_ACQUIRE() {
    // Rank bookkeeping BEFORE blocking: the violation that predicts a
    // deadlock must be reported before the deadlock hangs the process.
    lock_rank::note_acquire(rank_, name_);
    mu_.lock();
  }

  void unlock() SPIRE_RELEASE() {
    lock_rank::note_release(rank_, name_);
    mu_.unlock();
  }

  bool try_lock() SPIRE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock cannot block, but it still establishes
    // ordering edges the graph must know about.
    lock_rank::note_acquire(rank_, name_);
    return true;
  }

  lock_rank::Rank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  lock_rank::Rank rank_;
  const char* name_;  // string literal; diagnostics only
};

/// Scoped lock: the std::lock_guard of the contract layer. Deliberately
/// minimal — no deferred/adopted modes — because every lock site the
/// analysis can't see is a hole in the proof.
class SPIRE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPIRE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SPIRE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on util::Mutex, so the temporary
/// release/re-acquire inside wait() flows through the rank validator.
/// wait() requires the mutex held; the analysis treats it as held across
/// the call (matching how the caller's critical section reads).
class CondVar {
 public:
  void wait(Mutex& mu) SPIRE_REQUIRES(mu) { cv_.wait(mu); }

  template <class Pred>
  void wait(Mutex& mu, Pred pred) SPIRE_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }

  /// Returns pred() at exit, like std::condition_variable::wait_until.
  template <class Clock, class Duration, class Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) SPIRE_REQUIRES(mu) {
    while (!pred()) {
      if (cv_.wait_until(mu, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace spire::util
