// Deterministic pseudo-random number generation for simulation and tests.
//
// All stochastic behaviour in this project flows through Rng so that every
// experiment is reproducible bit-for-bit from a seed. The generator is
// xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state, and
// passes BigCrush; std::mt19937_64 would also work but is slower and its
// distributions are not guaranteed identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace spire::util {

/// xoshiro256** pseudo-random generator with explicit, portable
/// distributions. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw: true with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Standard normal via Marsaglia polar method (portable, no cached
  /// second value so draws are independent of call history).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double lambda);

  /// Geometric-like draw: number of failures before the first success with
  /// probability p in (0, 1]. Returns 0 for p >= 1.
  std::uint64_t geometric(double p);

  /// A new generator seeded from this one; useful for giving subsystems
  /// independent streams that still derive from one experiment seed.
  Rng split();

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Deterministically mixes a stream id into a base seed (splitmix64
/// finalizer over an injective combination), giving every (experiment seed,
/// task id) pair an independent, reproducible sub-stream. Parallel stages
/// seed their per-task generators this way so results never depend on which
/// worker ran which task: distinct ids always yield distinct sub-seeds.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace spire::util
