#include "util/mmap_file.h"

#include <stdexcept>
#include <utility>

#include "util/posix_io.h"

#if defined(_WIN32)
// The zero-copy serving path is POSIX-only; callers fall back to the
// stream-deserialize path when mapping is unsupported.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace spire::util {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("mmap: " + path + ": " + what);
}

}  // namespace

#if defined(_WIN32)

MmapFile MmapFile::open_readonly(const std::string& path) {
  fail(path, "memory mapping is not supported on this platform");
}

MmapFile::~MmapFile() = default;

#else

MmapFile MmapFile::open_readonly(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "fstat failed");
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    fail(path, "not a regular file");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    fail(path, "empty file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (data == MAP_FAILED) {
    ::close(fd);
    fail(path, "mmap failed");
  }
  // Re-check the size now that the mapping exists: a file truncated between
  // fstat and mmap would SIGBUS on first touch past the new EOF. The
  // descriptor still references the same inode, so this closes that window.
  struct stat verify{};
  const bool shrank =
      ::fstat(fd, &verify) != 0 || verify.st_size != st.st_size;
  ::close(fd);
  if (shrank) {
    ::munmap(data, size);
    fail(path, "file size changed while mapping (concurrent truncation?)");
  }
  return MmapFile(data, size, path);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

#endif

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    // tmp adopts the current mapping and unmaps it on scope exit.
    MmapFile tmp(std::move(other));
    std::swap(data_, tmp.data_);
    std::swap(size_, tmp.size_);
    std::swap(path_, tmp.path_);
  }
  return *this;
}

}  // namespace spire::util
