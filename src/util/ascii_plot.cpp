#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace spire::util {

namespace {

double transform(double v, Scale scale) {
  return scale == Scale::kLog10 ? std::log10(v) : v;
}

bool usable(double v, Scale scale) {
  if (!std::isfinite(v)) return false;
  return scale != Scale::kLog10 || v > 0.0;
}

struct Bounds {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
};

}  // namespace

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  Bounds bx;
  Bounds by;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (!usable(s.xs[i], options.x_scale) || !usable(s.ys[i], options.y_scale))
        continue;
      bx.include(transform(s.xs[i], options.x_scale));
      by.include(transform(s.ys[i], options.y_scale));
    }
  }
  if (!bx.valid() || !by.valid()) return "(empty plot)\n";
  // Degenerate ranges still need a nonzero span to map onto the canvas.
  if (bx.hi == bx.lo) {
    bx.lo -= 0.5;
    bx.hi += 0.5;
  }
  if (by.hi == by.lo) {
    by.lo -= 0.5;
    by.hi += 0.5;
  }

  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  auto to_col = [&](double x) {
    const double t = (transform(x, options.x_scale) - bx.lo) / (bx.hi - bx.lo);
    return static_cast<int>(std::lround(t * (w - 1)));
  };
  auto to_row = [&](double y) {
    const double t = (transform(y, options.y_scale) - by.lo) / (by.hi - by.lo);
    return (h - 1) - static_cast<int>(std::lround(t * (h - 1)));
  };
  auto put = [&](int col, int row, char marker) {
    if (col < 0 || col >= w || row < 0 || row >= h) return;
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = marker;
  };

  for (const auto& s : series) {
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    int prev_col = -1;
    int prev_row = -1;
    bool have_prev = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.xs[i], options.x_scale) ||
          !usable(s.ys[i], options.y_scale)) {
        have_prev = false;
        continue;
      }
      const int col = to_col(s.xs[i]);
      const int row = to_row(s.ys[i]);
      if (s.connect && have_prev) {
        // Bresenham-style interpolation between consecutive points.
        const int steps = std::max(std::abs(col - prev_col), std::abs(row - prev_row));
        for (int k = 1; k < steps; ++k) {
          const int c = prev_col + (col - prev_col) * k / steps;
          const int r = prev_row + (row - prev_row) * k / steps;
          put(c, r, s.marker);
        }
      }
      put(col, row, s.marker);
      prev_col = col;
      prev_row = row;
      have_prev = true;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  auto fmt = [](double v) {
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
  };
  const std::string y_hi = fmt(options.y_scale == Scale::kLog10
                                   ? std::pow(10.0, by.hi)
                                   : by.hi);
  const std::string y_lo = fmt(options.y_scale == Scale::kLog10
                                   ? std::pow(10.0, by.lo)
                                   : by.lo);
  const std::size_t label_w = std::max(y_hi.size(), y_lo.size());

  out << std::string(label_w, ' ') << "+" << std::string(static_cast<std::size_t>(w), '-')
      << "+\n";
  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0) label = y_hi;
    else if (r == h - 1) label = y_lo;
    out << label << std::string(label_w - label.size(), ' ') << "|"
        << canvas[static_cast<std::size_t>(r)] << "|\n";
  }
  out << std::string(label_w, ' ') << "+" << std::string(static_cast<std::size_t>(w), '-')
      << "+\n";
  const std::string x_lo = fmt(options.x_scale == Scale::kLog10
                                   ? std::pow(10.0, bx.lo)
                                   : bx.lo);
  const std::string x_hi = fmt(options.x_scale == Scale::kLog10
                                   ? std::pow(10.0, bx.hi)
                                   : bx.hi);
  out << std::string(label_w + 1, ' ') << x_lo;
  const std::size_t used = label_w + 1 + x_lo.size();
  const std::size_t right_edge = label_w + 1 + static_cast<std::size_t>(w);
  if (right_edge > used + x_hi.size()) {
    out << std::string(right_edge - used - x_hi.size(), ' ');
  } else {
    out << ' ';
  }
  out << x_hi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << "x: " << options.x_label;
    if (!options.y_label.empty()) out << "   y: " << options.y_label;
    out << '\n';
  }
  for (const auto& s : series) {
    out << "  '" << s.marker << "' " << s.name << '\n';
  }
  return out.str();
}

}  // namespace spire::util
