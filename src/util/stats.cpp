#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace spire::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  if (xs.size() != ws.size() || xs.empty()) return 0.0;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * ws[i];
    den += ws[i];
  }
  return den != 0.0 ? num / den : 0.0;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Ties get the average of their 1-based positions.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const std::vector<double> rx = ranks(xs);
  const std::vector<double> ry = ranks(ys);
  return pearson(rx, ry);
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double mape(std::span<const double> reference, std::span<const double> got) {
  if (reference.size() != got.size() || reference.empty()) return 0.0;
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == 0.0) continue;
    acc += std::abs((got[i] - reference[i]) / reference[i]);
    ++n;
  }
  return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace spire::util
