// Stateless byte-hashing primitives for artifact integrity and identity.
//
// Two different jobs, two different functions:
//   * crc32 — per-section corruption detection inside the binary model v3
//     format (spire/model_bin_v3.h). IEEE 802.3 polynomial, the same CRC
//     zip/png use, so artifacts can be cross-checked with standard tools.
//   * fnv1a64 — content addressing in the model registry
//     (serve/registry.h). Not cryptographic: it names artifacts produced
//     by our own deterministic writer, it does not defend against an
//     adversary minting collisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace spire::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), of `bytes`.
std::uint32_t crc32(std::span<const std::byte> bytes);
std::uint32_t crc32(std::string_view bytes);

/// Streaming form, for callers that see the bytes in chunks (the binary
/// model loader accumulates the whole-file CRC while reading sections):
///   state = crc32_init();
///   state = crc32_update(state, chunk);  // repeat
///   crc   = crc32_final(state);
/// crc32(b) == crc32_final(crc32_update(crc32_init(), b)).
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::byte> bytes);
std::uint32_t crc32_update(std::uint32_t state, std::string_view bytes);
std::uint32_t crc32_final(std::uint32_t state);

/// FNV-1a 64-bit hash of `bytes`.
std::uint64_t fnv1a64(std::span<const std::byte> bytes);
std::uint64_t fnv1a64(std::string_view bytes);

/// `fnv1a64` rendered as the canonical registry id: 16 lowercase hex
/// characters, zero-padded.
std::string fnv1a64_hex(std::string_view bytes);

}  // namespace spire::util
