// Runtime lock-rank validation: the dynamic half of the concurrency
// contract (the static half is util/thread_annotations.h).
//
// Every util::Mutex carries a declared rank from the table below. A
// per-thread stack of held ranks rejects out-of-rank acquisition (locks
// must be taken in strictly increasing rank order), and a process-wide
// acquisition graph — whose nodes are mutex ranks plus one pseudo-node per
// managed thread lifetime — detects cycles that only emerge across
// threads. The cycle detector is what makes the PR 6 deadlock class
// (joining a thread while holding a mutex that thread acquires)
// impossible to reintroduce silently: the join edge closes a cycle
// through the joined thread's lifetime node and is reported naming both
// ranks involved.
//
// The checks are active exactly when SPIRE_DCHECK is (Debug builds, or
// any build with -DSPIRE_CHECKED=ON) and compile to nothing otherwise,
// so Release serving pays zero cost. A violation invokes the installed
// handler; the default prints the full diagnostic to stderr and aborts.
// Tests install a capturing handler instead (set_violation_handler).
#pragma once

#include <cstdint>
#include <string>

namespace spire::util::lock_rank {

#if defined(SPIRE_CHECKED) || !defined(NDEBUG)
#define SPIRE_LOCK_RANK_ENABLED 1
#else
#define SPIRE_LOCK_RANK_ENABLED 0
#endif

/// Compile-time switch mirroring SPIRE_DCHECK_ENABLED: rank bookkeeping
/// exists only in Debug / SPIRE_CHECKED builds.
constexpr bool enabled() { return SPIRE_LOCK_RANK_ENABLED != 0; }

/// The process-wide lock order. A thread may only acquire a mutex whose
/// rank is STRICTLY GREATER than every rank it already holds; two mutexes
/// of the same rank must never be held together. The table is the
/// documented nesting order of the whole tree (DESIGN.md §13) — add new
/// ranks by slotting them between existing values, never by reusing one
/// for a mutex with different nesting.
enum class Rank : int {
  /// Pseudo-rank for managed thread lifetimes (ThreadToken). Never held
  /// on the mutex stack; participates only in the acquisition graph.
  kThreadLifetime = 0,
  kJoin = 10,             // server: join_threads() serialization
  kLifecycle = 20,        // server: drain lifecycle flags + start state
  kConnections = 30,      // server: connection-worker list
  kSlots = 40,            // server: shard + class-binding maps
  kShardQueue = 45,       // serve::Shard pending-request FIFO
  kRegistry = 50,         // serve::ModelRegistry LRU + live-mapping maps
  kProfileCache = 52,     // serve::ProfileCache per-stripe LRU
  kEstimateCache = 55,    // serve::EstimateCache per-stripe LRU
  kDrain = 60,            // server: drain accounting condvar mutex
  kPoolQueue = 70,        // util::ThreadPool work queue
  kConnectionWrite = 80,  // server: per-connection reply stream
  kLeaf = 100,            // default: innermost, nothing may nest under it
};

/// Stable human name for a rank ("connections", "thread-lifetime", ...);
/// violation messages are built from these.
const char* rank_name(Rank rank);

/// One managed thread's lifetime as a graph node. Construct it in the
/// spawning thread, keep it alive until after join, and have the spawned
/// thread hold a ScopedThreadLifetime over its whole body. Destroying the
/// token prunes its node (a finished thread can no longer deadlock).
class ThreadToken {
 public:
  explicit ThreadToken(std::string name);
  ~ThreadToken();
  ThreadToken(const ThreadToken&) = delete;
  ThreadToken& operator=(const ThreadToken&) = delete;

  /// Graph node id; 0 when the validator is compiled out.
  std::uint64_t node() const { return node_; }

 private:
  std::uint64_t node_ = 0;
};

/// RAII marker a managed thread holds for its whole run: while active,
/// every mutex the thread acquires records a lifetime -> rank edge.
class ScopedThreadLifetime {
 public:
  explicit ScopedThreadLifetime(const ThreadToken& token);
  ~ScopedThreadLifetime();
  ScopedThreadLifetime(const ScopedThreadLifetime&) = delete;
  ScopedThreadLifetime& operator=(const ScopedThreadLifetime&) = delete;
};

namespace detail {
void do_note_acquire(Rank rank, const char* name);
void do_note_release(Rank rank, const char* name);
void do_note_join(const ThreadToken& token);
}  // namespace detail

/// Called by util::Mutex just before blocking on the native lock, so an
/// ordering violation is reported before the deadlock it predicts hangs
/// the process. Checks the per-thread stack rule and feeds the graph.
inline void note_acquire(Rank rank, const char* name) {
  if constexpr (enabled()) detail::do_note_acquire(rank, name);
}

/// Called by util::Mutex on unlock; pops the rank off the held stack.
inline void note_release(Rank rank, const char* name) {
  if constexpr (enabled()) detail::do_note_release(rank, name);
}

/// Declare "this thread is about to join the thread behind `token`".
/// Records held-rank -> lifetime edges in the graph; a cycle through the
/// token's node is exactly the PR 6 join-under-lock deadlock shape.
inline void note_join(const ThreadToken& token) {
  if constexpr (enabled()) detail::do_note_join(token);
}

/// Violation sink. The default handler prints `message` to stderr and
/// aborts; tests install a capturing handler and get the old one back.
using ViolationHandler = void (*)(const std::string& message);
ViolationHandler set_violation_handler(ViolationHandler handler);

/// Drops every recorded edge and lifetime node. Only safe while no thread
/// holds a util::Mutex; exists so tests start from a clean graph.
void reset_for_testing();

}  // namespace spire::util::lock_rank
