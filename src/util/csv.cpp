#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spire::util {

int CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Parses one record starting at `pos`; advances pos past the trailing
// newline. Returns false at end of input.
bool parse_record(std::string_view text, std::size_t& pos,
                  std::vector<std::string>& out) {
  out.clear();
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        saw_any = true;
        ++pos;
        break;
      case ',':
        out.push_back(std::move(field));
        field.clear();
        saw_any = true;
        ++pos;
        break;
      case '\r':
        ++pos;
        break;
      case '\n':
        ++pos;
        out.push_back(std::move(field));
        return true;
      default:
        field.push_back(c);
        saw_any = true;
        ++pos;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (!saw_any && field.empty() && out.empty()) return false;
  out.push_back(std::move(field));
  return true;
}

}  // namespace

CsvDocument parse_csv(std::string_view text) {
  CsvDocument doc;
  std::size_t pos = 0;
  std::vector<std::string> record;
  if (!parse_record(text, pos, record)) return doc;
  doc.header = std::move(record);
  while (parse_record(text, pos, record)) {
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (record.size() != doc.header.size()) {
      throw std::runtime_error("csv: ragged row (expected " +
                               std::to_string(doc.header.size()) + " fields, got " +
                               std::to_string(record.size()) + ")");
    }
    doc.rows.push_back(std::move(record));
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double x : fields) {
    std::ostringstream os;
    os.precision(17);
    os << x;
    text.push_back(os.str());
  }
  row(text);
}

}  // namespace spire::util
