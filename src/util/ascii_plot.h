// Text scatter/line plotting so bench binaries can render figure analogues
// (paper Figs. 2, 5, 6, 7) directly into the terminal and log files.
#pragma once

#include <string>
#include <vector>

namespace spire::util {

/// One plottable series: points drawn with `marker`; when `connect` is true
/// the series is rasterized as line segments between consecutive points.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
  bool connect = false;
};

/// Axis scale for a plot dimension.
enum class Scale { kLinear, kLog10 };

/// Configuration for an ASCII plot canvas.
struct PlotOptions {
  int width = 72;    // interior columns
  int height = 20;   // interior rows
  Scale x_scale = Scale::kLinear;
  Scale y_scale = Scale::kLinear;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders all series into a framed plot with min/max axis annotations and a
/// legend. Non-finite points (and non-positive points on log axes) are
/// skipped. Returns the multi-line string.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

}  // namespace spire::util
