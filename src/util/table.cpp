#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spire::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) throw std::invalid_argument("table: bad column");
  aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      s += ' ';
      if (aligns_[i] == Align::kRight) s += std::string(pad, ' ');
      s += cells[i];
      if (aligns_[i] == Align::kLeft) s += std::string(pad, ' ');
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_count(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_percent(double ratio, int digits) {
  return format_fixed(ratio * 100.0, digits) + "%";
}

}  // namespace spire::util
