#include "util/thread_pool.h"

#include "util/contract.h"

namespace spire::util {

ThreadPool::ThreadPool(std::size_t threads) {
  SPIRE_ASSERT(threads > 0, "thread pool: need at least one worker, got ",
               threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // Drain before stopping: submitted tasks hold promises whose futures
      // callers may still be blocked on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task routes any exception into the future
  }
}

}  // namespace spire::util
