#include "util/thread_pool.h"

#include "util/contract.h"

namespace spire::util {

ThreadPool::ThreadPool(std::size_t threads) {
  SPIRE_ASSERT(threads > 0, "thread pool: need at least one worker, got ",
               threads);
  workers_.reserve(threads);
  worker_tokens_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    worker_tokens_.push_back(
        std::make_unique<lock_rank::ThreadToken>("pool-worker"));
    const lock_rank::ThreadToken& token = *worker_tokens_.back();
    workers_.emplace_back([this, &token]() { worker_loop(token); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    // note_join: a caller destroying the pool while holding a mutex the
    // workers acquire is the join-under-lock deadlock class; the rank
    // graph reports it before join() hangs.
    lock_rank::note_join(*worker_tokens_[i]);
    workers_[i].join();
  }
}

void ThreadPool::worker_loop(const lock_rank::ThreadToken& token) {
  lock_rank::ScopedThreadLifetime lifetime(token);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      // Drain before stopping: submitted tasks hold promises whose futures
      // callers may still be blocked on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task routes any exception into the future
  }
}

}  // namespace spire::util
