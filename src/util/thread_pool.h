// Fixed-size thread pool with deterministic fan-out helpers.
//
// SPIRE's ensemble is one independent roofline per metric (paper §III-C),
// so training and estimation are embarrassingly parallel across metrics.
// This pool is the repository's single execution substrate for that
// parallelism: a fixed set of workers drains one FIFO work queue, and the
// `parallel_for_index` helper collects results BY INPUT INDEX — never by
// completion order — so parallel output is bit-identical to serial output
// regardless of scheduling. Exceptions thrown by a task are captured in its
// future and rethrown at the lowest throwing index, again matching what a
// serial loop would do.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace spire::util {

/// How much parallelism a pipeline stage may use. The zero default keeps
/// every existing call site serial (and bit-identical to the pre-pool
/// behavior); callers opt in per invocation.
struct ExecOptions {
  /// Worker threads to use; 0 or 1 = run serially in the caller's thread.
  std::size_t threads = 0;

  bool serial() const { return threads <= 1; }

  /// One worker per hardware thread (at least one).
  static ExecOptions hardware() {
    const unsigned n = std::thread::hardware_concurrency();
    return ExecOptions{n == 0 ? std::size_t{1} : static_cast<std::size_t>(n)};
  }
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one). The pool is fixed-size: no
  /// workers are added or removed after construction.
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending tasks still run) and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. The future carries
  /// any exception the task throws.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
      SPIRE_EXCLUDES(mutex_) {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop(const lock_rank::ThreadToken& token) SPIRE_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  // One lifetime token per worker, so the rank validator can prove no one
  // joins a worker while holding a mutex that worker acquires.
  std::vector<std::unique_ptr<lock_rank::ThreadToken>> worker_tokens_;
  Mutex mutex_{lock_rank::Rank::kPoolQueue, "pool-queue"};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ SPIRE_GUARDED_BY(mutex_);
  bool stopping_ SPIRE_GUARDED_BY(mutex_) = false;
};

namespace detail {

template <typename Fn>
using for_index_result_t = std::invoke_result_t<Fn&, std::size_t>;

}  // namespace detail

/// Runs fn(0) ... fn(n-1) on `pool` and returns the results ordered by
/// index. Futures are drained in index order, so the value (and any
/// exception) sequence is identical to the serial loop's.
template <typename Fn>
auto parallel_for_index(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<detail::for_index_result_t<Fn>> {
  using R = detail::for_index_result_t<Fn>;
  static_assert(!std::is_void_v<R>,
                "parallel_for_index tasks must return a value (results are "
                "collected by index)");
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
  }
  std::vector<R> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // get() rethrows a task's exception; remaining tasks keep running and
    // the pool destructor joins them before the exception escapes the
    // caller's scope.
    out.push_back(futures[i].get());
  }
  return out;
}

/// Convenience entry point gated on ExecOptions: serial options (or n <= 1)
/// run the plain loop in the caller's thread with zero pool machinery;
/// otherwise a pool of min(exec.threads, n) workers is spun up for the call.
/// Either way, results are ordered by index and bit-identical across modes.
template <typename Fn>
auto parallel_for_index(const ExecOptions& exec, std::size_t n, Fn&& fn)
    -> std::vector<detail::for_index_result_t<Fn>> {
  using R = detail::for_index_result_t<Fn>;
  static_assert(!std::is_void_v<R>,
                "parallel_for_index tasks must return a value (results are "
                "collected by index)");
  if (exec.serial() || n <= 1) {
    std::vector<R> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  ThreadPool pool(std::min(exec.threads, n));
  return parallel_for_index(pool, n, fn);
}

}  // namespace spire::util
