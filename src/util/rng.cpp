#include "util/rng.h"

#include <cmath>

namespace spire::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi - lo >= 0 by contract
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Marsaglia polar method; discards the second variate for history
  // independence (draw count per call is variable but distribution exact).
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log argument is safe.
  return -std::log(1.0 - uniform()) / lambda;
}

std::uint64_t Rng::geometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const double u = 1.0 - uniform();  // (0, 1]
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng Rng::split() { return Rng(next()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // base + stream * odd-constant is injective in stream for a fixed base,
  // and the splitmix64 finalizer is a bijection, so distinct stream ids can
  // never collide onto one sub-seed.
  std::uint64_t x = base + stream * 0x9e3779b97f4a7c15ULL;
  return splitmix64(x);
}

}  // namespace spire::util
