#include "util/hash.h"

#include <array>
#include <bit>
#include <cstring>

namespace spire::util {

namespace {

constexpr std::uint32_t byteswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000FF00u) | ((v << 8) & 0x00FF0000u) |
         (v << 24);
}

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] advances the CRC of byte b through k further zero bytes, so
// eight input bytes fold into the state with eight independent lookups per
// iteration instead of a serial chain of eight dependent ones. Roughly 5x
// the throughput of the one-table loop; artifact validation is
// CRC-bound, so this is the hot loop of every v3 load and publish.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      table[k][i] =
          table[0][table[k - 1][i] & 0xFFu] ^ (table[k - 1][i] >> 8);
    }
  }
  return table;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> bytes) {
  static const std::array<std::array<std::uint32_t, 256>, 8> kTable =
      make_crc_tables();
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    if constexpr (std::endian::native == std::endian::big) {
      lo = byteswap32(lo);
      hi = byteswap32(hi);
    }
    lo ^= state;
    state = kTable[7][lo & 0xFFu] ^ kTable[6][(lo >> 8) & 0xFFu] ^
            kTable[5][(lo >> 16) & 0xFFu] ^ kTable[4][lo >> 24] ^
            kTable[3][hi & 0xFFu] ^ kTable[2][(hi >> 8) & 0xFFu] ^
            kTable[1][(hi >> 16) & 0xFFu] ^ kTable[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    state =
        kTable[0][(state ^ static_cast<std::uint32_t>(*p++)) & 0xFFu] ^
        (state >> 8);
  }
  return state;
}

std::uint32_t crc32_update(std::uint32_t state, std::string_view bytes) {
  return crc32_update(state,
                      std::as_bytes(std::span(bytes.data(), bytes.size())));
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::byte> bytes) {
  return crc32_final(crc32_update(crc32_init(), bytes));
}

std::uint32_t crc32(std::string_view bytes) {
  return crc32(std::as_bytes(std::span(bytes.data(), bytes.size())));
}

std::uint64_t fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a64(std::as_bytes(std::span(bytes.data(), bytes.size())));
}

std::string fnv1a64_hex(std::string_view bytes) {
  constexpr char kDigits[] = "0123456789abcdef";
  const std::uint64_t hash = fnv1a64(bytes);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hash >> (4 * i)) & 0xFu];
  }
  return out;
}

}  // namespace spire::util
