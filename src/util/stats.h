// Small descriptive-statistics helpers used across sampling, analysis and
// the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spire::util {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance; 0 for fewer than 2 elements.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Minimum; 0 for an empty range.
double min(std::span<const double> xs);

/// Maximum; 0 for an empty range.
double max(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]; 0 for an empty range.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Weighted mean: sum(w*x)/sum(w); 0 if weights sum to 0 or sizes mismatch.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Pearson correlation coefficient; 0 when either side has no variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation; ties receive average ranks.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Root-mean-square error between two equal-length series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute percentage error, skipping entries where the reference is 0.
double mape(std::span<const double> reference, std::span<const double> got);

/// Average ranks for a series (1-based, ties averaged). Exposed for the
/// Spearman implementation and for ranking-agreement analyses.
std::vector<double> ranks(std::span<const double> xs);

/// Streaming accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spire::util
