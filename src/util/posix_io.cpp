#include "util/posix_io.h"

#include <cerrno>
#include <chrono>
#include <mutex>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

namespace spire::util {

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kEof:
      return "eof";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kError:
      return "error";
  }
  return "unknown";
}

#if defined(_WIN32)

// The server/registry raw-descriptor paths are POSIX-only (like the mmap
// serving path); these stubs keep the library linkable.
int open_retry(const char*, int, unsigned) {
  errno = ENOSYS;
  return -1;
}
long read_retry(int, void*, std::size_t) {
  errno = ENOSYS;
  return -1;
}
bool write_all(int, const void*, std::size_t) {
  errno = ENOSYS;
  return false;
}
void close_quietly(int) {}
void ignore_sigpipe() {}
IoStatus wait_readable(int, int) { return IoStatus::kError; }
IoStatus read_exact(int, void*, std::size_t, int) { return IoStatus::kError; }
IoStatus write_all_deadline(int, const void*, std::size_t, int) {
  return IoStatus::kError;
}
IoStatus writev_all_deadline(int, ConstBuffer*, std::size_t, int) {
  return IoStatus::kError;
}

#else

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline`, clamped to >= 0; -1 when no
/// deadline was set (infinite budget).
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

IoStatus wait_fd(int fd, short events, int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  for (;;) {
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (rc > 0) {
      // POLLHUP/POLLERR still mean "a read/write will not block" — the
      // subsequent syscall reports the precise condition (EOF, EPIPE, ...).
      return IoStatus::kOk;
    }
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

}  // namespace

int open_retry(const char* path, int flags, unsigned mode) {
  for (;;) {
    const int fd = ::open(path, flags, static_cast<mode_t>(mode));
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

long read_retry(int fd, void* buf, std::size_t count) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, count);
    if (n >= 0 || errno != EINTR) return static_cast<long>(n);
  }
}

bool write_all(int fd, const void* buf, std::size_t count) {
  const char* p = static_cast<const char*>(buf);
  std::size_t left = count;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

IoStatus wait_readable(int fd, int timeout_ms) {
  return wait_fd(fd, POLLIN, timeout_ms);
}

IoStatus read_exact(int fd, void* buf, std::size_t count, int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  char* p = static_cast<char*>(buf);
  std::size_t left = count;
  while (left > 0) {
    const IoStatus ready =
        wait_fd(fd, POLLIN, remaining_ms(has_deadline, deadline));
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n = ::read(fd, p, left);
    if (n == 0) return IoStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoStatus::kError;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus write_all_deadline(int fd, const void* buf, std::size_t count,
                            int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  const char* p = static_cast<const char*>(buf);
  std::size_t left = count;
  while (left > 0) {
    const IoStatus ready =
        wait_fd(fd, POLLOUT, remaining_ms(has_deadline, deadline));
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kEof;
      return IoStatus::kError;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus writev_all_deadline(int fd, ConstBuffer* buffers, std::size_t count,
                             int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           has_deadline ? timeout_ms : 0);
  std::size_t first = 0;  // buffers before this index are fully written
  while (first < count && buffers[first].size == 0) ++first;
  while (first < count) {
    const IoStatus ready =
        wait_fd(fd, POLLOUT, remaining_ms(has_deadline, deadline));
    if (ready != IoStatus::kOk) return ready;
    // Re-point an iovec window at the unwritten tail. IOV_MAX is at least
    // 16 everywhere; a reply is 2-3 buffers, so no chunking loop needed —
    // a long array just takes extra wakeups.
    struct iovec iov[16];
    std::size_t iovcnt = 0;
    for (std::size_t i = first; i < count && iovcnt < 16; ++i) {
      if (buffers[i].size == 0) continue;
      iov[iovcnt].iov_base = const_cast<void*>(buffers[i].data);
      iov[iovcnt].iov_len = buffers[i].size;
      ++iovcnt;
    }
    const ssize_t n = ::writev(fd, iov, static_cast<int>(iovcnt));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kEof;
      return IoStatus::kError;
    }
    // Consume `n` bytes off the front of the buffer list in place.
    std::size_t wrote = static_cast<std::size_t>(n);
    while (first < count && wrote > 0) {
      if (buffers[first].size <= wrote) {
        wrote -= buffers[first].size;
        buffers[first].size = 0;
        ++first;
      } else {
        buffers[first].data =
            static_cast<const char*>(buffers[first].data) + wrote;
        buffers[first].size -= wrote;
        wrote = 0;
      }
    }
    while (first < count && buffers[first].size == 0) ++first;
  }
  return IoStatus::kOk;
}

#endif

}  // namespace spire::util
