#include "util/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace spire::util::lock_rank {

const char* rank_name(Rank rank) {
  switch (rank) {
    case Rank::kThreadLifetime:
      return "thread-lifetime";
    case Rank::kJoin:
      return "join";
    case Rank::kLifecycle:
      return "lifecycle";
    case Rank::kConnections:
      return "connections";
    case Rank::kSlots:
      return "slots";
    case Rank::kShardQueue:
      return "shard-queue";
    case Rank::kRegistry:
      return "registry";
    case Rank::kProfileCache:
      return "profile-cache";
    case Rank::kEstimateCache:
      return "estimate-cache";
    case Rank::kDrain:
      return "drain";
    case Rank::kPoolQueue:
      return "pool-queue";
    case Rank::kConnectionWrite:
      return "connection-write";
    case Rank::kLeaf:
      return "leaf";
  }
  return "unknown";
}

namespace {

void default_handler(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&default_handler};

/// Graph nodes are mutex ranks (id = rank value) plus one id per live
/// ThreadToken (ids start at kFirstTokenNode so they never collide with a
/// rank). Everything lives behind one internal std::mutex — the validator
/// itself must not depend on the machinery it validates.
constexpr std::uint64_t kFirstTokenNode = 1000;

struct GraphState {
  std::mutex mu;
  // Node id -> display name. Rank nodes remember the most recent mutex
  // instance name seen at that rank, which is what diagnostics print.
  std::map<std::uint64_t, std::string> names;
  std::map<std::uint64_t, std::vector<std::uint64_t>> out;
  std::set<std::pair<std::uint64_t, std::uint64_t>> edges;
  std::uint64_t next_token = kFirstTokenNode;
};

GraphState& graph() {
  static GraphState* s = new GraphState();  // never destroyed: threads may
  return *s;                                // outlive static teardown
}

struct Held {
  Rank rank;
  const char* name;
};

thread_local std::vector<Held> t_held;
thread_local std::uint64_t t_lifetime = 0;

Rank node_rank(std::uint64_t node) {
  return node >= kFirstTokenNode ? Rank::kThreadLifetime
                                 : static_cast<Rank>(node);
}

std::string describe_node(const GraphState& g, std::uint64_t node) {
  const auto it = g.names.find(node);
  const std::string label = it == g.names.end() ? "?" : it->second;
  const char* kind = node >= kFirstTokenNode ? "thread" : "mutex";
  return std::string(kind) + " '" + label + "' (rank " +
         rank_name(node_rank(node)) + ")";
}

/// Inserts from -> to; when the reverse path exists the new edge closes a
/// cycle, returned as a printable chain. Caller holds g.mu.
std::string add_edge_locked(GraphState& g, std::uint64_t from,
                            std::uint64_t to) {
  if (from == to) {
    return describe_node(g, from) + " -> itself";
  }
  if (!g.edges.insert({from, to}).second) return {};  // known edge: checked
  g.out[from].push_back(to);
  // DFS for a path to -> ... -> from; with the new edge that is a cycle.
  std::map<std::uint64_t, std::uint64_t> parent;
  std::vector<std::uint64_t> stack{to};
  parent[to] = to;
  bool found = false;
  while (!stack.empty() && !found) {
    const std::uint64_t node = stack.back();
    stack.pop_back();
    const auto it = g.out.find(node);
    if (it == g.out.end()) continue;
    for (const std::uint64_t next : it->second) {
      if (parent.count(next)) continue;
      parent[next] = node;
      if (next == from) {
        found = true;
        break;
      }
      stack.push_back(next);
    }
  }
  if (!found) return {};
  // Reconstruct from -> ... -> to -> from (the new edge shown first).
  std::vector<std::uint64_t> path;
  for (std::uint64_t node = from; node != to; node = parent.at(node)) {
    path.push_back(node);
  }
  path.push_back(to);
  std::string chain = describe_node(g, from);
  for (auto it2 = path.rbegin(); it2 != path.rend(); ++it2) {
    if (*it2 == from) continue;
    chain += " -> " + describe_node(g, *it2);
  }
  chain += " -> " + describe_node(g, from);
  return chain;
}

void report(const std::string& message) {
  g_handler.load(std::memory_order_acquire)(message);
}

}  // namespace

namespace detail {

void do_note_acquire(Rank rank, const char* name) {
  std::string violation;
  if (!t_held.empty()) {
    const Held& top = t_held.back();
    if (static_cast<int>(rank) <= static_cast<int>(top.rank)) {
      violation = std::string("lock-rank: out-of-rank acquisition: mutex '") +
                  name + "' (rank " + rank_name(rank) +
                  ") acquired while holding mutex '" + top.name + "' (rank " +
                  rank_name(top.rank) +
                  "); locks must be acquired in strictly increasing rank "
                  "order (DESIGN.md §13)";
    }
  }
  std::string cycle;
  {
    GraphState& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    const auto node = static_cast<std::uint64_t>(rank);
    g.names[node] = name;
    for (const Held& held : t_held) {
      const std::string chain =
          add_edge_locked(g, static_cast<std::uint64_t>(held.rank), node);
      if (!chain.empty() && cycle.empty()) cycle = chain;
    }
    if (t_lifetime != 0) {
      const std::string chain = add_edge_locked(g, t_lifetime, node);
      if (!chain.empty() && cycle.empty()) cycle = chain;
    }
  }
  t_held.push_back({rank, name});
  if (!violation.empty()) report(violation);
  if (!cycle.empty()) {
    report("lock-rank: cycle detected: " + cycle +
           "; this acquisition order can deadlock");
  }
}

void do_note_release(Rank rank, const char* name) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->rank == rank && it->name == name) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  report(std::string("lock-rank: releasing mutex '") + name + "' (rank " +
         rank_name(rank) + ") that this thread does not hold");
}

void do_note_join(const ThreadToken& token) {
  if (token.node() == 0) return;
  std::string cycle;
  {
    GraphState& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const Held& held : t_held) {
      const std::string chain = add_edge_locked(
          g, static_cast<std::uint64_t>(held.rank), token.node());
      if (!chain.empty() && cycle.empty()) cycle = chain;
    }
    if (t_lifetime != 0 && t_lifetime != token.node()) {
      const std::string chain = add_edge_locked(g, t_lifetime, token.node());
      if (!chain.empty() && cycle.empty()) cycle = chain;
    }
  }
  if (!cycle.empty()) {
    report("lock-rank: cycle detected: " + cycle +
           "; joining a thread while holding a mutex it acquires can "
           "deadlock (the PR 6 shutdown-vs-accept shape)");
  }
}

}  // namespace detail

ThreadToken::ThreadToken(std::string name) {
  if constexpr (!enabled()) return;
  GraphState& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  node_ = g.next_token++;
  g.names[node_] = std::move(name);
}

ThreadToken::~ThreadToken() {
  if (node_ == 0) return;
  // A finished thread can no longer participate in a deadlock; pruning its
  // node keeps the graph bounded by *live* threads, not threads ever made.
  GraphState& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.names.erase(node_);
  g.out.erase(node_);
  for (auto it = g.edges.begin(); it != g.edges.end();) {
    it = (it->first == node_ || it->second == node_) ? g.edges.erase(it)
                                                     : std::next(it);
  }
  for (auto& [from, targets] : g.out) {
    (void)from;
    std::erase(targets, node_);
  }
}

ScopedThreadLifetime::ScopedThreadLifetime(const ThreadToken& token) {
  if (token.node() != 0) t_lifetime = token.node();
}

ScopedThreadLifetime::~ScopedThreadLifetime() { t_lifetime = 0; }

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler ? handler : &default_handler,
                            std::memory_order_acq_rel);
}

void reset_for_testing() {
  GraphState& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.names.clear();
  g.out.clear();
  g.edges.clear();
  t_held.clear();
}

}  // namespace spire::util::lock_rank
