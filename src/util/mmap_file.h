// Read-only memory mapping of a whole file, RAII-owned.
//
// The serving split's cold-start killer is parse-and-copy: loading a v2
// artifact deserializes every table into heap vectors before the first
// estimate. MmapFile is the substrate for the zero-copy alternative: map
// the artifact once, page-cache shared across every process serving the
// same model, and let serve::MappedModel point spans straight into it.
//
// Hardening against files that change after open (a truncation would turn
// every later read into SIGBUS): the size is captured with fstat on the
// open descriptor, the map is created for exactly that size, and fstat is
// re-checked AFTER the mapping exists — a file that shrank in the window
// between open and map is rejected up front instead of faulting later.
// Registry objects are immutable-once-published (rename-on-publish), so a
// mapping resolved through the registry can never see an in-place rewrite.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace spire::util {

class MmapFile {
 public:
  /// An empty mapping (no bytes).
  MmapFile() = default;

  /// Maps `path` read-only in its entirety. Throws std::runtime_error
  /// ("mmap: ...") when the file cannot be opened, is empty, cannot be
  /// mapped, or changes size while being mapped.
  static MmapFile open_readonly(const std::string& path);

  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped bytes. The span (and any view derived from it) stays valid
  /// for the lifetime of this object; moving the object does not move the
  /// mapping, so derived views survive moves.
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }

  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MmapFile(void* data, std::size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace spire::util
