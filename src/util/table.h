// ASCII table rendering for the paper-reproduction harnesses.
//
// The bench binaries print Table I/II/III analogues; this renderer keeps
// their formatting consistent and column-aligned.
#pragma once

#include <string>
#include <vector>

namespace spire::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple text table: set a header, add rows, render.
class TextTable {
 public:
  /// Creates a table with the given column headers. Alignment defaults to
  /// left for every column.
  explicit TextTable(std::vector<std::string> header);

  /// Sets the alignment of column `col` (0-based).
  void set_align(std::size_t col, Align align);

  /// Adds a row; must have the same arity as the header.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> row);

  /// Adds a horizontal separator line at the current position.
  void add_separator();

  /// Renders the table with a border and a header rule.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  // A row is either cells (size == header) or empty (separator marker).
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming to a
/// compact fixed representation (e.g. 1.2345 -> "1.23").
std::string format_fixed(double value, int digits);

/// Formats large counts with thousands separators (e.g. 1300000 -> "1,300,000").
std::string format_count(long long value);

/// Formats a ratio in [0,1] as a percentage string (e.g. 0.512 -> "51.2%").
std::string format_percent(double ratio, int digits = 1);

}  // namespace spire::util
