// Contract macros: the repository's single vocabulary for stating the
// invariants SPIRE's correctness rests on (left region increasing and
// concave-down, right region decreasing, the fit upper-bounding every
// training sample, ...). Unlike bare assert()/throw, every violation
// message carries the failed expression, its location, AND the offending
// values, so a report from the field is actionable without a debugger.
//
//   SPIRE_ASSERT(cond, parts...)     always-on precondition; throws
//                                    ContractViolation (an
//                                    std::invalid_argument).
//   SPIRE_INVARIANT(cond, parts...)  always-on internal invariant; throws
//                                    ContractViolation. Semantically "the
//                                    library broke its own promise".
//   SPIRE_BOUNDS(cond, parts...)     always-on index/range check; throws
//                                    BoundsViolation (an std::out_of_range).
//   SPIRE_DCHECK(cond, parts...)     compiled out in Release unless the
//                                    build sets -DSPIRE_CHECKED=ON; used
//                                    for expensive postconditions (e.g.
//                                    re-verifying the upper-bound property
//                                    over all training points after a fit).
//
// `parts...` are streamed into the message: SPIRE_ASSERT(x < y, "x=", x,
// ", y=", y). Zero parts is fine. Values print with max precision so the
// exact failing doubles round-trip.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spire::util {

/// Thrown by SPIRE_ASSERT / SPIRE_INVARIANT / SPIRE_DCHECK. Derives from
/// std::invalid_argument (hence std::logic_error) so callers and tests that
/// expect the standard types keep working.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown by SPIRE_BOUNDS for index/range violations.
class BoundsViolation : public std::out_of_range {
 public:
  explicit BoundsViolation(const std::string& what)
      : std::out_of_range(what) {}
};

namespace detail {

template <class... Parts>
std::string contract_message(const Parts&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    os.precision(17);
    (os << ... << parts);
    return os.str();
  }
}

template <class Exception>
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const std::string& message) {
  std::string what = std::string(kind) + " failed: " + expr;
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  what += " [";
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ']';
  throw Exception(what);
}

}  // namespace detail
}  // namespace spire::util

#define SPIRE_CONTRACT_CHECK_(kind, exception, cond, ...)                   \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::spire::util::detail::contract_fail<exception>(                      \
          kind, #cond, __FILE__, __LINE__,                                  \
          ::spire::util::detail::contract_message(__VA_ARGS__));            \
    }                                                                       \
  } while (false)

/// Precondition on caller-supplied values; always on.
#define SPIRE_ASSERT(cond, ...)                                             \
  SPIRE_CONTRACT_CHECK_("SPIRE_ASSERT", ::spire::util::ContractViolation,   \
                        cond __VA_OPT__(, ) __VA_ARGS__)

/// Internal consistency the library itself guarantees; always on.
#define SPIRE_INVARIANT(cond, ...)                                          \
  SPIRE_CONTRACT_CHECK_("SPIRE_INVARIANT", ::spire::util::ContractViolation, \
                        cond __VA_OPT__(, ) __VA_ARGS__)

/// Index/range precondition; always on; throws std::out_of_range.
#define SPIRE_BOUNDS(cond, ...)                                             \
  SPIRE_CONTRACT_CHECK_("SPIRE_BOUNDS", ::spire::util::BoundsViolation,     \
                        cond __VA_OPT__(, ) __VA_ARGS__)

// SPIRE_DCHECK is active in Debug builds (no NDEBUG) and whenever the build
// defines SPIRE_CHECKED (cmake -DSPIRE_CHECKED=ON), so Release binaries can
// opt back into the expensive checks without giving up optimization.
#if defined(SPIRE_CHECKED) || !defined(NDEBUG)
#define SPIRE_DCHECK(cond, ...)                                             \
  SPIRE_CONTRACT_CHECK_("SPIRE_DCHECK", ::spire::util::ContractViolation,   \
                        cond __VA_OPT__(, ) __VA_ARGS__)
#define SPIRE_DCHECK_ENABLED 1
#else
#define SPIRE_DCHECK(cond, ...) \
  do {                          \
  } while (false)
#define SPIRE_DCHECK_ENABLED 0
#endif
