// Minimal CSV reading/writing for sample datasets and experiment output.
//
// The dialect is deliberately small: comma separator, double-quote quoting
// with "" escapes, and a mandatory header row. This is enough to round-trip
// our own datasets and to hand results to external plotting tools.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace spire::util {

/// A parsed CSV document: one header row plus data rows of equal arity.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 if absent.
  int column(std::string_view name) const;
};

/// Parses a CSV document from text. Throws std::runtime_error on ragged
/// rows or unterminated quotes.
CsvDocument parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
CsvDocument read_csv_file(const std::string& path);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row, quoting fields that need it.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with max_digits10 precision.
  void row_numeric(const std::vector<double>& fields);

 private:
  std::ostream& out_;
};

/// Escapes one field per the CSV quoting rules (exposed for tests).
std::string csv_escape(std::string_view field);

}  // namespace spire::util
