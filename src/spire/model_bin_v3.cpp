// v3 flat-region validation and serialization (see model_bin_v3.h for the
// wire layout). The validator is the gate in front of every zero-copy
// reader: nothing forms a pointer into an artifact until every byte count,
// alignment, CRC, and semantic invariant here has passed, and every
// failure names the section and absolute byte offset.
#include "spire/model_bin_v3.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "spire/model_io.h"
#include "util/contract.h"
#include "util/hash.h"

namespace spire::model::v3 {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("model-v3: " + what);
}

std::string at_byte(std::size_t offset) {
  return " (at byte " + std::to_string(offset) + ")";
}

std::size_t align_up(std::size_t n) {
  return (n + kFlatAlignment - 1) & ~(kFlatAlignment - 1);
}

/// Alignment-safe little-endian reads over the region buffer, addressed by
/// ABSOLUTE file offset. Bounds were established by the caller's layout
/// checks; these guard anyway so a checker bug can never over-read.
struct RegionReader {
  std::span<const std::byte> region;
  std::size_t base;  // absolute file offset of region[0]

  void need(std::size_t abs, std::size_t bytes, const char* what) const {
    if (abs < base || region.size() - (abs - base) < bytes ||
        abs - base > region.size()) {
      fail(std::string(what) + " out of bounds" + at_byte(abs));
    }
  }

  std::uint32_t u32(std::size_t abs, const char* what) const {
    need(abs, 4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(region[abs - base + i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64(std::size_t abs, const char* what) const {
    need(abs, 8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(region[abs - base + i]))
           << (8 * i);
    }
    return v;
  }

  double f64(std::size_t abs, const char* what) const {
    return std::bit_cast<double>(u64(abs, what));
  }
};

// --- little-endian encoding (writer side) ----------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::string_view section_name(Section section) {
  switch (section) {
    case Section::kMetricRanges: return "metric-ranges";
    case Section::kNameIndex: return "name-index";
    case Section::kStrings: return "strings";
    case Section::kX0: return "x0";
    case Section::kY0: return "y0";
    case Section::kX1: return "x1";
    case Section::kY1: return "y1";
    case Section::kSlopes: return "slopes";
    case Section::kIntercepts: return "intercepts";
  }
  return "unknown";
}

FlatLayout check_flat_region(std::span<const std::byte> region,
                             std::size_t region_base,
                             std::uint32_t crc_before_region, Verify verify) {
  const std::size_t total = region_base + region.size();
  constexpr std::size_t kTableBytes = kSectionCount * kSectionEntryBytes;
  if (region.size() < kFooterBytes + kFlatHeaderBytes + kTableBytes) {
    fail("flat region truncated: " + std::to_string(region.size()) +
         " byte(s) after the metric sections, need at least " +
         std::to_string(kFooterBytes + kFlatHeaderBytes + kTableBytes));
  }
  const RegionReader r{region, region_base};

  // --- footer (fixed position at EOF) --------------------------------------
  FlatLayout layout;
  const std::size_t footer_off = total - kFooterBytes;
  if (r.u64(footer_off + 24, "footer magic") != kFooterMagic) {
    fail("bad footer magic" + at_byte(footer_off + 24));
  }
  if (r.u32(footer_off + 20, "footer reserved") != 0) {
    fail("footer reserved field is not zero" + at_byte(footer_off + 20));
  }
  layout.flat_offset = r.u64(footer_off, "flat offset");
  layout.file_size = r.u64(footer_off + 8, "file size");
  const std::uint32_t stored_crc = r.u32(footer_off + 16, "file CRC");
  if (layout.file_size != total) {
    fail("footer declares " + std::to_string(layout.file_size) +
         " file byte(s) but the artifact has " + std::to_string(total) +
         at_byte(footer_off + 8));
  }

  // --- flat header ----------------------------------------------------------
  if (layout.flat_offset % kFlatAlignment != 0) {
    fail("flat header offset " + std::to_string(layout.flat_offset) +
         " is not 8-byte aligned" + at_byte(footer_off));
  }
  if (layout.flat_offset < region_base || layout.flat_offset < 24) {
    fail("flat header offset " + std::to_string(layout.flat_offset) +
         " precedes the metric sections" + at_byte(footer_off));
  }
  if (layout.flat_offset > footer_off ||
      footer_off - layout.flat_offset < kFlatHeaderBytes + kTableBytes) {
    fail("flat header/section table overruns the footer" +
         at_byte(layout.flat_offset));
  }
  if (r.u64(layout.flat_offset, "flat magic") != kFlatMagic) {
    fail("bad flat magic" + at_byte(layout.flat_offset));
  }
  layout.metric_count = r.u32(layout.flat_offset + 8, "flat metric count");
  layout.piece_count = r.u32(layout.flat_offset + 12, "flat piece count");
  const std::uint32_t section_count =
      r.u32(layout.flat_offset + 16, "flat section count");
  if (section_count != kSectionCount) {
    fail("flat section count " + std::to_string(section_count) +
         " (this build reads " + std::to_string(kSectionCount) + ")" +
         at_byte(layout.flat_offset + 16));
  }
  if (r.u32(layout.flat_offset + 20, "flat reserved") != 0) {
    fail("flat reserved field is not zero" + at_byte(layout.flat_offset + 20));
  }
  const std::size_t metric_count = layout.metric_count;
  const std::size_t piece_count = layout.piece_count;
  if (metric_count == 0 || metric_count > kMaxMetricSections) {
    fail("flat metric count " + std::to_string(metric_count) +
         " outside [1, " + std::to_string(kMaxMetricSections) + "]" +
         at_byte(layout.flat_offset + 8));
  }
  if (piece_count == 0 ||
      piece_count > metric_count * 2 * kMaxRegionCorners) {
    fail("flat piece count " + std::to_string(piece_count) +
         " outside [1, " + std::to_string(metric_count * 2 * kMaxRegionCorners) +
         "]" + at_byte(layout.flat_offset + 12));
  }

  // --- section table: kinds, sizes, alignment, contiguity, CRCs ------------
  std::size_t cursor =
      layout.flat_offset + kFlatHeaderBytes + kTableBytes;  // 8-aligned
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const std::size_t entry_off =
        layout.flat_offset + kFlatHeaderBytes + i * kSectionEntryBytes;
    const auto kind = static_cast<Section>(i);
    const std::string_view name = section_name(kind);
    const std::uint32_t declared_kind = r.u32(entry_off, "section kind");
    if (declared_kind != i) {
      fail("section table entry " + std::to_string(i) + " declares kind " +
           std::to_string(declared_kind) + ", expected " + std::string(name) +
           at_byte(entry_off));
    }
    SectionExtent extent;
    extent.crc = r.u32(entry_off + 4, "section CRC");
    extent.offset = r.u64(entry_off + 8, "section offset");
    extent.bytes = r.u64(entry_off + 16, "section byte count");
    if (extent.offset % kFlatAlignment != 0) {
      fail("section " + std::string(name) + " offset " +
           std::to_string(extent.offset) + " is not 8-byte aligned" +
           at_byte(entry_off + 8));
    }
    if (extent.offset != cursor) {
      fail("section " + std::string(name) + " at byte " +
           std::to_string(extent.offset) + ", expected " +
           std::to_string(cursor) + " (sections must be contiguous)" +
           at_byte(entry_off + 8));
    }
    std::size_t expected = 0;
    bool exact = true;
    switch (kind) {
      case Section::kMetricRanges: expected = sizeof(MetricRange) * metric_count; break;
      case Section::kNameIndex: expected = sizeof(NameRef) * metric_count; break;
      case Section::kStrings: exact = false; break;
      default: expected = sizeof(double) * piece_count; break;
    }
    if (exact && extent.bytes != expected) {
      fail("section " + std::string(name) + " has " +
           std::to_string(extent.bytes) + " byte(s), expected " +
           std::to_string(expected) + at_byte(entry_off + 16));
    }
    if (!exact && (extent.bytes < metric_count ||
                   extent.bytes > metric_count * kMaxNameBytes)) {
      fail("section strings has " + std::to_string(extent.bytes) +
           " byte(s) for " + std::to_string(metric_count) +
           " metric name(s)" + at_byte(entry_off + 16));
    }
    if (extent.bytes > footer_off || extent.offset > footer_off - extent.bytes) {
      fail("section " + std::string(name) + " overruns the footer" +
           at_byte(entry_off + 8));
    }
    if (verify == Verify::kFull) {
      const std::uint32_t crc = util::crc32(
          region.subspan(extent.offset - region_base, extent.bytes));
      if (crc != extent.crc) {
        fail("section " + std::string(name) + " CRC mismatch (stored " +
             std::to_string(extent.crc) + ", computed " + std::to_string(crc) +
             ")" + at_byte(extent.offset));
      }
    }
    layout.sections[i] = extent;
    cursor = align_up(extent.offset + extent.bytes);
  }
  if (cursor != footer_off) {
    fail("trailing garbage between the last section and the footer" +
         at_byte(cursor));
  }

  // --- semantic checks on the raw payloads ----------------------------------
  // Metric ranges must tile [0, piece_count) with a non-empty right region
  // each; the x1 column may hold +inf only at a right region's final piece.
  const SectionExtent& ranges = layout.section(Section::kMetricRanges);
  const SectionExtent& x0s = layout.section(Section::kX0);
  const SectionExtent& y0s = layout.section(Section::kY0);
  const SectionExtent& x1s = layout.section(Section::kX1);
  const SectionExtent& y1s = layout.section(Section::kY1);
  std::size_t prev_end = 0;
  for (std::size_t m = 0; m < metric_count; ++m) {
    const std::size_t off = ranges.offset + m * sizeof(MetricRange);
    const std::uint32_t lb = r.u32(off, "left begin");
    const std::uint32_t le = r.u32(off + 4, "left end");
    const std::uint32_t rb = r.u32(off + 8, "right begin");
    const std::uint32_t re = r.u32(off + 12, "right end");
    const double left_max = r.f64(off + 16, "left max");
    const std::string where =
        "metric range " + std::to_string(m) + at_byte(off);
    if (!(lb <= le && le == rb && rb < re && re <= piece_count)) {
      fail(where + ": piece indices [" + std::to_string(lb) + ", " +
           std::to_string(le) + ") / [" + std::to_string(rb) + ", " +
           std::to_string(re) + ") are not an ordered tile of " +
           std::to_string(piece_count) + " piece(s)");
    }
    if (lb != prev_end) {
      fail(where + ": begins at piece " + std::to_string(lb) +
           ", previous range ended at " + std::to_string(prev_end));
    }
    prev_end = re;
    if (std::isnan(left_max) || std::isinf(left_max)) {
      fail(where + ": left max is not finite");
    }
    if (lb == le && left_max != 0.0) {
      fail(where + ": left max must be 0 when the left region is absent");
    }
    if (verify == Verify::kFull) {
      for (std::uint32_t i = lb; i < re; ++i) {
        const double x0 = r.f64(x0s.offset + 8 * i, "x0");
        const double y0 = r.f64(y0s.offset + 8 * i, "y0");
        const double x1 = r.f64(x1s.offset + 8 * i, "x1");
        const double y1 = r.f64(y1s.offset + 8 * i, "y1");
        const auto piece_fail = [&](const char* column, std::size_t col_off) {
          fail("section " + std::string(column) + " piece " +
               std::to_string(i) + ": value is not finite" +
               at_byte(col_off + 8 * i));
        };
        if (!std::isfinite(x0)) piece_fail("x0", x0s.offset);
        if (!std::isfinite(y0)) piece_fail("y0", y0s.offset);
        if (!std::isfinite(y1)) piece_fail("y1", y1s.offset);
        if (std::isnan(x1) || (std::isinf(x1) && (x1 < 0 || i + 1 != re))) {
          fail("section x1 piece " + std::to_string(i) +
               ": only a right region's final piece may be +inf" +
               at_byte(x1s.offset + 8 * i));
        }
      }
    }
  }
  if (prev_end != piece_count) {
    fail("metric ranges cover " + std::to_string(prev_end) + " of " +
         std::to_string(piece_count) + " piece(s)");
  }

  // Derived tables must at least be numbers (they are CRC-protected like
  // everything else; the bit-identical evaluator never reads them).
  if (verify == Verify::kFull) {
    for (const Section s : {Section::kSlopes, Section::kIntercepts}) {
      const SectionExtent& extent = layout.section(s);
      for (std::size_t i = 0; i < piece_count; ++i) {
        if (std::isnan(r.f64(extent.offset + 8 * i, "derived value"))) {
          fail("section " + std::string(section_name(s)) + " piece " +
               std::to_string(i) + ": value is NaN" +
               at_byte(extent.offset + 8 * i));
        }
      }
    }
  }

  // Name index: contiguous (offset, length) records exactly covering the
  // strings section, each within the per-name cap.
  const SectionExtent& names = layout.section(Section::kNameIndex);
  const std::size_t strings_bytes = layout.section(Section::kStrings).bytes;
  std::size_t string_cursor = 0;
  for (std::size_t m = 0; m < metric_count; ++m) {
    const std::size_t off = names.offset + m * sizeof(NameRef);
    const std::uint32_t name_off = r.u32(off, "name offset");
    const std::uint32_t name_len = r.u32(off + 4, "name length");
    if (name_len == 0 || name_len > kMaxNameBytes) {
      fail("name " + std::to_string(m) + ": length " +
           std::to_string(name_len) + " outside [1, " +
           std::to_string(kMaxNameBytes) + "]" + at_byte(off + 4));
    }
    if (name_off != string_cursor ||
        strings_bytes - string_cursor < name_len) {
      fail("name " + std::to_string(m) +
           ": index is not a contiguous cover of the strings section" +
           at_byte(off));
    }
    string_cursor += name_len;
  }
  if (string_cursor != strings_bytes) {
    fail("strings section has " + std::to_string(strings_bytes) +
         " byte(s), the name index references " +
         std::to_string(string_cursor));
  }

  // --- whole-file CRC, last -------------------------------------------------
  // The catch-all for every byte the checks above do not pin down (padding,
  // header fields, the v2 body for stream callers). Checked after the
  // per-section CRCs so payload corruption reports the pinpoint section
  // diagnostic rather than this generic one. Skipped at kStructure: it is
  // the one check whose cost scales with table bytes, and readers of
  // immutable published objects already paid it at publish time.
  if (verify == Verify::kFull) {
    const std::uint32_t computed_crc = util::crc32_final(util::crc32_update(
        crc_before_region, region.first(region.size() - kFooterBytes)));
    if (computed_crc != stored_crc) {
      fail("whole-file CRC mismatch (stored " + std::to_string(stored_crc) +
           ", computed " + std::to_string(computed_crc) + ")" +
           at_byte(footer_off + 16));
    }
  }
  return layout;
}

FlatView map_flat(std::span<const std::byte> file, Verify verify) {
  if constexpr (std::endian::native != std::endian::little) {
    fail("zero-copy mapping requires a little-endian host; use the stream "
         "deserialize path");
  }
  if (file.size() < kModelBinMagicV3.size() ||
      std::memcmp(file.data(), kModelBinMagicV3.data(),
                  kModelBinMagicV3.size()) != 0) {
    fail("bad magic (expected '" +
         std::string(kModelBinMagicV3.substr(0, kModelBinMagicV3.size() - 1)) +
         "')");
  }
  if (reinterpret_cast<std::uintptr_t>(file.data()) % kFlatAlignment != 0) {
    fail("artifact storage is not 8-byte aligned (map the file)");
  }

  FlatView view;
  view.layout = check_flat_region(file, 0, util::crc32_init(), verify);
  const auto doubles = [&](Section s) {
    const SectionExtent& extent = view.layout.section(s);
    return std::span<const double>(
        reinterpret_cast<const double*>(file.data() + extent.offset),
        extent.bytes / sizeof(double));
  };
  const SectionExtent& ranges = view.layout.section(Section::kMetricRanges);
  view.ranges = std::span<const MetricRange>(
      reinterpret_cast<const MetricRange*>(file.data() + ranges.offset),
      view.layout.metric_count);
  const SectionExtent& names = view.layout.section(Section::kNameIndex);
  view.names = std::span<const NameRef>(
      reinterpret_cast<const NameRef*>(file.data() + names.offset),
      view.layout.metric_count);
  const SectionExtent& strings = view.layout.section(Section::kStrings);
  view.strings = std::string_view(
      reinterpret_cast<const char*>(file.data() + strings.offset),
      strings.bytes);
  view.x0 = doubles(Section::kX0);
  view.y0 = doubles(Section::kY0);
  view.x1 = doubles(Section::kX1);
  view.y1 = doubles(Section::kY1);
  view.slopes = doubles(Section::kSlopes);
  view.intercepts = doubles(Section::kIntercepts);
  return view;
}

void append_flat(std::string& out, const FlatTables& tables) {
  const std::size_t metric_count = tables.names.size();
  const std::size_t piece_count = tables.x0.size();
  SPIRE_ASSERT(tables.ranges.size() == metric_count,
               "append_flat: ranges/names size mismatch");
  SPIRE_ASSERT(tables.y0.size() == piece_count &&
                   tables.x1.size() == piece_count &&
                   tables.y1.size() == piece_count,
               "append_flat: segment table size mismatch");
  SPIRE_ASSERT(metric_count > 0 && piece_count > 0,
               "append_flat: empty model");

  // Derived fast-path tables; degenerate/infinite pieces flatten to the
  // piece's left endpoint, mirroring LinearPiece::at's early-outs.
  std::vector<double> slopes(piece_count), intercepts(piece_count);
  for (std::size_t i = 0; i < piece_count; ++i) {
    const double x0 = tables.x0[i], y0 = tables.y0[i];
    const double x1 = tables.x1[i], y1 = tables.y1[i];
    if (!std::isfinite(x1) || x1 == x0) {
      slopes[i] = 0.0;
      intercepts[i] = y0;
    } else {
      slopes[i] = (y1 - y0) / (x1 - x0);
      intercepts[i] = y0 - slopes[i] * x0;
    }
  }

  // --- payloads -------------------------------------------------------------
  std::array<std::string, kSectionCount> payloads;
  for (const MetricRange& range : tables.ranges) {
    std::string& p = payloads[static_cast<std::size_t>(Section::kMetricRanges)];
    put_u32(p, range.left_begin);
    put_u32(p, range.left_end);
    put_u32(p, range.right_begin);
    put_u32(p, range.right_end);
    put_f64(p, range.left_max);
  }
  {
    std::string& index = payloads[static_cast<std::size_t>(Section::kNameIndex)];
    std::string& strings = payloads[static_cast<std::size_t>(Section::kStrings)];
    for (const std::string_view name : tables.names) {
      SPIRE_ASSERT(!name.empty() && name.size() <= kMaxNameBytes,
                   "append_flat: bad metric name length ", name.size());
      put_u32(index, static_cast<std::uint32_t>(strings.size()));
      put_u32(index, static_cast<std::uint32_t>(name.size()));
      strings.append(name);
    }
  }
  const auto put_column = [&payloads](Section s, std::span<const double> v) {
    std::string& p = payloads[static_cast<std::size_t>(s)];
    for (const double d : v) put_f64(p, d);
  };
  put_column(Section::kX0, tables.x0);
  put_column(Section::kY0, tables.y0);
  put_column(Section::kX1, tables.x1);
  put_column(Section::kY1, tables.y1);
  put_column(Section::kSlopes, slopes);
  put_column(Section::kIntercepts, intercepts);

  // --- layout ---------------------------------------------------------------
  while (out.size() % kFlatAlignment != 0) out.push_back('\0');
  const std::size_t flat_offset = out.size();
  std::array<std::size_t, kSectionCount> offsets{};
  std::size_t cursor =
      flat_offset + kFlatHeaderBytes + kSectionCount * kSectionEntryBytes;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    offsets[i] = cursor;
    cursor = align_up(cursor + payloads[i].size());
  }
  const std::size_t file_size = cursor + kFooterBytes;

  // --- header + section table ----------------------------------------------
  put_u64(out, kFlatMagic);
  put_u32(out, static_cast<std::uint32_t>(metric_count));
  put_u32(out, static_cast<std::uint32_t>(piece_count));
  put_u32(out, kSectionCount);
  put_u32(out, 0);
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    put_u32(out, i);
    put_u32(out, util::crc32(payloads[i]));
    put_u64(out, offsets[i]);
    put_u64(out, payloads[i].size());
  }
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    out.resize(offsets[i], '\0');  // zero pad up to the 8-aligned offset
    out.append(payloads[i]);
  }
  out.resize(cursor, '\0');

  // --- footer ---------------------------------------------------------------
  const std::uint32_t file_crc = util::crc32(out);
  put_u64(out, flat_offset);
  put_u64(out, file_size);
  put_u32(out, file_crc);
  put_u32(out, 0);
  put_u64(out, kFooterMagic);
  SPIRE_ASSERT(out.size() == file_size, "append_flat: layout arithmetic drift");
}

}  // namespace spire::model::v3
