// One SPIRE roofline: a learned piecewise-linear upper bound on throughput
// as a function of one metric's operational intensity (paper §III-B, §III-D).
//
// The function splits at the apex — the highest-throughput training sample:
//  * left region [0, I_apex]: increasing, concave-down; fit with a
//    gift-wrapping convex hull from the origin (paper Fig. 5);
//  * right region [I_apex, inf): decreasing (with the horizontal apex cap
//    as the one sanctioned exception to concave-up), fit by a Dijkstra
//    shortest path over candidate segments between Pareto-front samples,
//    where edge weights are squared overestimation errors (paper Fig. 6).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/piecewise_linear.h"
#include "sampling/sample.h"

namespace spire::model {

class MetricRoofline {
 public:
  /// Fits a roofline to training samples. Samples with t <= 0 are ignored;
  /// throws std::invalid_argument when no usable sample remains.
  static MetricRoofline fit(std::span<const sampling::Sample> samples);

  /// Estimated maximum throughput at operational intensity `intensity`
  /// (which may be +infinity, meaning the metric never fired).
  /// Throws std::invalid_argument for negative or NaN intensities.
  double estimate(double intensity) const;

  /// Convenience: estimate for one sample (uses its I_x).
  double estimate(const sampling::Sample& sample) const {
    return estimate(sample.intensity());
  }

  /// The apex: the highest-throughput training sample's coordinates.
  double apex_intensity() const { return apex_.x; }
  double apex_throughput() const { return apex_.y; }

  /// The fitted regions (left may be absent when the apex sits at I = 0 or
  /// only infinite-intensity samples exist).
  const std::optional<geom::PiecewiseLinear>& left() const { return left_; }
  const geom::PiecewiseLinear& right() const { return right_; }

  std::size_t training_sample_count() const { return trained_on_; }

  /// Human-readable dump of both regions.
  std::string describe() const;

  /// Direct construction from fitted pieces (deserialization path).
  MetricRoofline(std::optional<geom::PiecewiseLinear> left,
                 geom::PiecewiseLinear right, geom::Point apex,
                 std::size_t trained_on);

  friend bool operator==(const MetricRoofline&, const MetricRoofline&) =
      default;

 private:
  std::optional<geom::PiecewiseLinear> left_;
  geom::PiecewiseLinear right_;
  geom::Point apex_;
  std::size_t trained_on_ = 0;
};

/// Exposed pieces of the fitting pipeline, used by tests and the Fig. 5/6
/// reproduction benches.
namespace fitting {

/// Converts samples to (I, P) points, dropping unusable ones (non-finite
/// fields, t <= 0, negative counts). Points with m == 0 get I = +infinity.
std::vector<geom::Point> sample_points(std::span<const sampling::Sample> samples);

/// Left-region fit over the finite points: the hull chain from the origin
/// to the apex, as a function, or nullopt when the chain is trivial.
std::optional<geom::PiecewiseLinear> fit_left(
    const std::vector<geom::Point>& finite_points);

/// Right-region fit over all points (finite and infinite): the
/// minimum-squared-error valid segment series from the apex rightward.
geom::PiecewiseLinear fit_right(const std::vector<geom::Point>& points);

/// The weighted-graph search underlying fit_right, exposed with its
/// intermediate artifacts for inspection (Fig. 6 reproduction).
struct RightFitDebug {
  std::vector<geom::Point> front;       // Pareto samples, descending I
  double start_throughput = 0.0;        // P_S (real or dummy)
  bool dummy_start = true;              // no sample had I = infinity
  std::vector<int> path;                // chosen front indices, right-to-left
  double total_error = 0.0;             // shortest-path cost
  geom::PiecewiseLinear function;
};
RightFitDebug fit_right_debug(const std::vector<geom::Point>& points);

}  // namespace fitting

}  // namespace spire::model
