#include "spire/model_io.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spire::model {

using counters::Event;
using geom::LinearPiece;
using geom::PiecewiseLinear;

namespace {

constexpr std::string_view kHeader = kModelHeader;

// Loaded model files may be adversarial (hand-edited, truncated, corrupted
// in transit), so region sizes are bounded before any allocation. Real fits
// have at most a few dozen corners; this is orders of magnitude above that.
constexpr std::size_t kMaxRegionCorners = 65'536;

void write_value(std::ostream& out, double v) {
  if (std::isinf(v)) {
    out << (v > 0 ? "inf" : "-inf");
  } else {
    out << v;
  }
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("model: line " + std::to_string(line_no) + ": " +
                           what);
}

/// Tokenizer over one line that reports errors with that line's number.
struct LineTokens {
  std::istringstream in;
  std::size_t line_no;

  LineTokens(const std::string& line, std::size_t number)
      : in(line), line_no(number) {}

  std::string next(const char* what) {
    std::string token;
    if (!(in >> token)) {
      fail(line_no, std::string("missing ") + what);
    }
    return token;
  }

  void expect_end() {
    std::string token;
    if (in >> token) {
      fail(line_no, "trailing garbage '" + token + "'");
    }
  }

  /// Parses a value token. "inf" is accepted only when `allow_inf`; NaN and
  /// "-inf" are never valid in a model file.
  double value(const char* what, bool allow_inf = false) {
    const std::string token = next(what);
    if (token == "inf") {
      if (!allow_inf) {
        fail(line_no, std::string(what) + " must be finite, got 'inf'");
      }
      return std::numeric_limits<double>::infinity();
    }
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(line_no, std::string("bad ") + what + " '" + token + "'");
    }
    if (!std::isfinite(v)) {
      fail(line_no, std::string(what) + " must be finite, got '" + token + "'");
    }
    return v;
  }

  /// Parses a region size and enforces the allocation bound.
  std::size_t count(const char* what) {
    const std::string token = next(what);
    std::size_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), n);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(line_no, std::string("bad ") + what + " '" + token + "'");
    }
    if (n > kMaxRegionCorners) {
      fail(line_no, std::string(what) + " " + token + " exceeds the limit of " +
                        std::to_string(kMaxRegionCorners));
    }
    return n;
  }
};

}  // namespace

void save_model(const Ensemble& ensemble, std::ostream& out) {
  out.precision(17);
  out << kHeader << '\n';
  for (const auto& [metric, roofline] : ensemble.rooflines()) {
    out << "metric " << counters::event_name(metric)
        << " trained_on=" << roofline.training_sample_count() << " apex=";
    write_value(out, roofline.apex_intensity());
    out << ' ';
    write_value(out, roofline.apex_throughput());
    out << '\n';

    if (roofline.left().has_value()) {
      const auto& pieces = roofline.left()->pieces();
      out << "left " << pieces.size() + 1;
      out << ' ' << pieces.front().x0 << ' ' << pieces.front().y0;
      for (const auto& p : pieces) out << ' ' << p.x1 << ' ' << p.y1;
      out << '\n';
    } else {
      out << "left 0\n";
    }

    const auto& pieces = roofline.right().pieces();
    out << "right " << pieces.size();
    for (const auto& p : pieces) {
      out << ' ';
      write_value(out, p.x0);
      out << ' ';
      write_value(out, p.y0);
      out << ' ';
      write_value(out, p.x1);
      out << ' ';
      write_value(out, p.y1);
    }
    out << '\n';
  }
}

Ensemble load_model(std::istream& in) {
  std::size_t line_no = 0;
  std::string line;
  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line()) {
    fail(1, "bad header (expected '" + std::string(kHeader) + "')");
  }
  if (line != kHeader) {
    // Distinguish version drift from garbage: a well-formed header with a
    // different N gets a message naming both versions.
    std::istringstream header(line);
    std::string word, version, rest;
    if (header >> word >> version && word == "spire-model" &&
        version.size() >= 2 && version[0] == 'v' && !(header >> rest)) {
      fail(line_no, "unsupported model format version " + version +
                        " (this build reads v" +
                        std::to_string(kModelFormatVersion) + ")");
    }
    fail(line_no,
         "bad header (expected '" + std::string(kHeader) + "')");
  }

  std::map<Event, MetricRoofline> rooflines;
  while (next_line()) {
    // --- metric line: "metric NAME trained_on=N apex=I P" ---------------
    LineTokens metric_line(line, line_no);
    if (const auto kw = metric_line.next("keyword"); kw != "metric") {
      fail(line_no, "expected 'metric', got '" + kw + "'");
    }
    const std::string name = metric_line.next("metric name");
    const auto metric = counters::event_by_name(name);
    if (!metric) fail(line_no, "unknown metric '" + name + "'");
    if (rooflines.contains(*metric)) {
      fail(line_no, "duplicate metric '" + name + "'");
    }

    const std::string trained_field = metric_line.next("trained_on field");
    if (trained_field.rfind("trained_on=", 0) != 0) {
      fail(line_no, "expected trained_on field, got '" + trained_field + "'");
    }
    std::size_t trained_on = 0;
    {
      const std::string_view digits =
          std::string_view(trained_field).substr(11);
      const auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(),
                          trained_on);
      if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
        fail(line_no, "bad trained_on count '" + trained_field + "'");
      }
    }

    // apex= is glued to the intensity by the writer; also accept a lone
    // "apex=" token for hand-written files.
    const std::string apex_field = metric_line.next("apex field");
    if (apex_field.rfind("apex=", 0) != 0) {
      fail(line_no, "expected apex field, got '" + apex_field + "'");
    }
    double apex_x = 0.0;
    if (apex_field == "apex=") {
      apex_x = metric_line.value("apex intensity", /*allow_inf=*/true);
    } else {
      LineTokens glued(apex_field.substr(5), line_no);
      apex_x = glued.value("apex intensity", /*allow_inf=*/true);
    }
    const double apex_y = metric_line.value("apex throughput");
    metric_line.expect_end();

    // --- left line: "left K x0 y0 x1 y1 ..." ----------------------------
    if (!next_line()) fail(line_no + 1, "missing left region for " + name);
    LineTokens left_line(line, line_no);
    if (const auto kw = left_line.next("keyword"); kw != "left") {
      fail(line_no, "expected left region, got '" + kw + "'");
    }
    const std::size_t left_count = left_line.count("left knot count");
    std::optional<PiecewiseLinear> left;
    if (left_count > 0) {
      std::vector<geom::Point> knots(left_count);
      for (auto& k : knots) {
        k.x = left_line.value("left knot x");
        k.y = left_line.value("left knot y");
      }
      try {
        left = PiecewiseLinear::from_knots(knots);
      } catch (const std::exception& e) {
        fail(line_no, std::string("invalid left region: ") + e.what());
      }
    }
    left_line.expect_end();

    // --- right line: "right K x0 y0 x1 y1 ..." --------------------------
    if (!next_line()) fail(line_no + 1, "missing right region for " + name);
    LineTokens right_line(line, line_no);
    if (const auto kw = right_line.next("keyword"); kw != "right") {
      fail(line_no, "expected right region, got '" + kw + "'");
    }
    const std::size_t right_count = right_line.count("right piece count");
    if (right_count == 0) fail(line_no, "empty right region");
    std::vector<LinearPiece> pieces(right_count);
    for (std::size_t i = 0; i < right_count; ++i) {
      // Only the final piece's right corner may sit at infinity (the
      // documented horizontal tail); everything else must be finite.
      pieces[i].x0 = right_line.value("right x0");
      pieces[i].y0 = right_line.value("right y0");
      pieces[i].x1 =
          right_line.value("right x1", /*allow_inf=*/i + 1 == right_count);
      pieces[i].y1 = right_line.value("right y1");
    }
    right_line.expect_end();

    try {
      rooflines.emplace(*metric,
                        MetricRoofline(std::move(left),
                                       PiecewiseLinear(std::move(pieces)),
                                       {apex_x, apex_y}, trained_on));
    } catch (const std::exception& e) {
      fail(line_no, std::string("invalid right region: ") + e.what());
    }
  }
  if (rooflines.empty()) throw std::runtime_error("model: no metrics");
  return Ensemble(std::move(rooflines));
}

void save_model_file(const Ensemble& ensemble, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("model: cannot write " + path);
  save_model(ensemble, out);
}

Ensemble load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model: cannot read " + path);
  return load_model(in);
}

}  // namespace spire::model
