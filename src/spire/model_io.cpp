#include "spire/model_io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spire::model {

using counters::Event;
using geom::LinearPiece;
using geom::PiecewiseLinear;

namespace {

constexpr std::string_view kHeader = "spire-model v1";

void write_value(std::ostream& out, double v) {
  if (std::isinf(v)) {
    out << (v > 0 ? "inf" : "-inf");
  } else {
    out << v;
  }
}

double read_value(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("model: missing ") + what);
  }
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("model: bad ") + what + " '" + token +
                             "'");
  }
}

}  // namespace

void save_model(const Ensemble& ensemble, std::ostream& out) {
  out.precision(17);
  out << kHeader << '\n';
  for (const auto& [metric, roofline] : ensemble.rooflines()) {
    out << "metric " << counters::event_name(metric)
        << " trained_on=" << roofline.training_sample_count() << " apex=";
    write_value(out, roofline.apex_intensity());
    out << ' ';
    write_value(out, roofline.apex_throughput());
    out << '\n';

    if (roofline.left().has_value()) {
      const auto& pieces = roofline.left()->pieces();
      out << "left " << pieces.size() + 1;
      out << ' ' << pieces.front().x0 << ' ' << pieces.front().y0;
      for (const auto& p : pieces) out << ' ' << p.x1 << ' ' << p.y1;
      out << '\n';
    } else {
      out << "left 0\n";
    }

    const auto& pieces = roofline.right().pieces();
    out << "right " << pieces.size();
    for (const auto& p : pieces) {
      out << ' ';
      write_value(out, p.x0);
      out << ' ';
      write_value(out, p.y0);
      out << ' ';
      write_value(out, p.x1);
      out << ' ';
      write_value(out, p.y1);
    }
    out << '\n';
  }
}

Ensemble load_model(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("model: bad header");
  }
  std::map<Event, MetricRoofline> rooflines;
  std::string keyword;
  while (in >> keyword) {
    if (keyword != "metric") {
      throw std::runtime_error("model: expected 'metric', got '" + keyword + "'");
    }
    std::string name;
    std::string trained_field;
    if (!(in >> name >> trained_field)) {
      throw std::runtime_error("model: truncated metric line");
    }
    const auto metric = counters::event_by_name(name);
    if (!metric) throw std::runtime_error("model: unknown metric '" + name + "'");
    if (trained_field.rfind("trained_on=", 0) != 0) {
      throw std::runtime_error("model: expected trained_on field");
    }
    const std::size_t trained_on =
        static_cast<std::size_t>(std::stoull(trained_field.substr(11)));
    std::string apex_field;
    if (!(in >> apex_field) || apex_field != "apex=") {
      // apex= is glued to the first value by the writer; handle both forms.
      if (apex_field.rfind("apex=", 0) != 0) {
        throw std::runtime_error("model: expected apex field");
      }
    }
    double apex_x = 0.0;
    if (apex_field == "apex=") {
      apex_x = read_value(in, "apex intensity");
    } else {
      std::istringstream field(apex_field.substr(5));
      apex_x = read_value(field, "apex intensity");
    }
    const double apex_y = read_value(in, "apex throughput");

    std::string left_kw;
    std::size_t left_count = 0;
    if (!(in >> left_kw >> left_count) || left_kw != "left") {
      throw std::runtime_error("model: expected left region");
    }
    std::optional<PiecewiseLinear> left;
    if (left_count > 0) {
      std::vector<geom::Point> knots(left_count);
      for (auto& k : knots) {
        k.x = read_value(in, "left knot x");
        k.y = read_value(in, "left knot y");
      }
      left = PiecewiseLinear::from_knots(knots);
    }

    std::string right_kw;
    std::size_t right_count = 0;
    if (!(in >> right_kw >> right_count) || right_kw != "right") {
      throw std::runtime_error("model: expected right region");
    }
    if (right_count == 0) throw std::runtime_error("model: empty right region");
    std::vector<LinearPiece> pieces(right_count);
    for (auto& p : pieces) {
      p.x0 = read_value(in, "right x0");
      p.y0 = read_value(in, "right y0");
      p.x1 = read_value(in, "right x1");
      p.y1 = read_value(in, "right y1");
    }
    rooflines.emplace(
        *metric, MetricRoofline(std::move(left), PiecewiseLinear(std::move(pieces)),
                                {apex_x, apex_y}, trained_on));
  }
  if (rooflines.empty()) throw std::runtime_error("model: no metrics");
  return Ensemble(std::move(rooflines));
}

void save_model_file(const Ensemble& ensemble, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("model: cannot write " + path);
  save_model(ensemble, out);
}

Ensemble load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model: cannot read " + path);
  return load_model(in);
}

}  // namespace spire::model
