#include "spire/polarity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contract.h"
#include "util/stats.h"

namespace spire::model {

using geom::kInfinity;
using geom::LinearPiece;
using geom::PiecewiseLinear;
using sampling::Sample;

std::string_view polarity_name(Polarity polarity) {
  switch (polarity) {
    case Polarity::kNegative: return "negative";
    case Polarity::kPositive: return "positive";
    case Polarity::kAmbiguous: return "ambiguous";
  }
  return "?";
}

TrendAnalysis detect_polarity(std::span<const Sample> samples,
                              double threshold) {
  TrendAnalysis out;
  std::vector<double> intensity;
  std::vector<double> throughput;
  for (const Sample& s : samples) {
    if (s.t <= 0.0) continue;
    const double i = s.intensity();
    if (!std::isfinite(i) || i <= 0.0) continue;
    intensity.push_back(i);
    throughput.push_back(s.throughput());
  }
  out.finite_samples = intensity.size();
  if (out.finite_samples < 8) return out;

  // A raw correlation over all samples is easily washed out by workloads
  // where OTHER metrics are the binding constraint (many low-P samples at
  // every intensity). The roofline question is about the UPPER ENVELOPE:
  // does the best-achievable throughput rise or fall with intensity? So
  // bucket intensities into log-spaced bins and correlate the per-bin
  // maxima with the bin positions.
  double lo = intensity[0];
  double hi = intensity[0];
  for (const double i : intensity) {
    lo = std::min(lo, i);
    hi = std::max(hi, i);
  }
  if (!(hi > lo)) return out;  // a single intensity value has no trend

  constexpr int kBins = 12;
  const double log_lo = std::log(lo);
  const double span = std::log(hi) - log_lo;
  std::vector<double> bin_max(kBins, -1.0);
  for (std::size_t k = 0; k < intensity.size(); ++k) {
    int bin = static_cast<int>((std::log(intensity[k]) - log_lo) / span *
                               kBins);
    bin = std::clamp(bin, 0, kBins - 1);
    bin_max[static_cast<std::size_t>(bin)] =
        std::max(bin_max[static_cast<std::size_t>(bin)], throughput[k]);
  }
  std::vector<double> xs;
  std::vector<double> ys;
  for (int b = 0; b < kBins; ++b) {
    if (bin_max[static_cast<std::size_t>(b)] < 0.0) continue;
    xs.push_back(static_cast<double>(b));
    ys.push_back(bin_max[static_cast<std::size_t>(b)]);
  }
  if (xs.size() < 5) return out;  // not enough distinct regimes

  // Effect-size guard: a flat envelope's rank order is pure noise, so a
  // trend call also requires a material spread between the highest and
  // lowest bin maxima.
  double env_lo = ys[0];
  double env_hi = ys[0];
  for (const double y : ys) {
    env_lo = std::min(env_lo, y);
    env_hi = std::max(env_hi, y);
  }
  if (env_lo <= 0.0 || env_hi / env_lo < 1.15) return out;

  out.spearman = util::spearman(xs, ys);
  if (out.spearman >= threshold) {
    // The attainable bound rises as events get rarer: the events hurt.
    out.polarity = Polarity::kNegative;
  } else if (out.spearman <= -threshold) {
    out.polarity = Polarity::kPositive;
  }
  return out;
}

MetricRoofline fit_with_polarity(std::span<const Sample> samples,
                                 double threshold) {
  MetricRoofline base = MetricRoofline::fit(samples);
  const TrendAnalysis trend = detect_polarity(samples, threshold);

  switch (trend.polarity) {
    case Polarity::kAmbiguous:
      return base;

    case Polarity::kNegative: {
      // Throughput must not drop as events become rarer: flatten the right
      // region at the fit's own value at the apex boundary, which already
      // upper-bounds every sample at or beyond the apex (it is the maximum
      // of the apex throughput and any I = infinity samples' bound).
      const double apex_i = base.apex_intensity();
      const double level = std::max(base.apex_throughput(),
                                    base.right().at(kInfinity));
      SPIRE_INVARIANT(std::isfinite(level) && level >= 0.0,
                      "polarity: flat cap level must be finite, got ", level);
      const double start = std::isfinite(apex_i) ? apex_i : 0.0;
      PiecewiseLinear flat({LinearPiece{start, level, kInfinity, level}});
      return MetricRoofline(base.left(), std::move(flat),
                            {apex_i, base.apex_throughput()},
                            base.training_sample_count());
    }

    case Polarity::kPositive: {
      // The rising left side is the confounded one (wrong-path decodes and
      // similar artifacts): drop it so estimates below the apex clamp to
      // the apex bound instead of collapsing toward the origin.
      return MetricRoofline(std::nullopt, base.right(),
                            {base.apex_intensity(), base.apex_throughput()},
                            base.training_sample_count());
    }
  }
  return base;
}

}  // namespace spire::model
