#include "spire/validation.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace spire::model {

using sampling::Dataset;
using sampling::DatasetView;
using sampling::Sample;

CoverageReport coverage(const Ensemble& ensemble, DatasetView data,
                        double tolerance) {
  CoverageReport report;
  report.worst_excess = 1.0;
  for (const auto& [metric, roofline] : ensemble.rooflines()) {
    for (const Sample& s : data.samples(metric)) {
      if (s.t <= 0.0) continue;
      ++report.total;
      const double bound = roofline.estimate(s.intensity());
      if (s.throughput() <= bound + tolerance) {
        ++report.covered;
      } else if (bound > 0.0) {
        report.worst_excess = std::max(report.worst_excess,
                                       s.throughput() / bound);
      }
    }
  }
  return report;
}

RankAgreement compare_rankings(const Analyzer::Analysis& a,
                               const Analyzer::Analysis& b, int k) {
  RankAgreement out;
  out.k = k;
  std::vector<double> av;
  std::vector<double> bv;
  for (const auto& ra : a.ranking) {
    for (const auto& rb : b.ranking) {
      if (ra.metric == rb.metric) {
        av.push_back(ra.p_bar);
        bv.push_back(rb.p_bar);
      }
    }
  }
  out.spearman = util::spearman(av, bv);
  const auto limit_a = std::min<std::size_t>(static_cast<std::size_t>(k),
                                             a.ranking.size());
  const auto limit_b = std::min<std::size_t>(static_cast<std::size_t>(k),
                                             b.ranking.size());
  for (std::size_t i = 0; i < limit_a; ++i) {
    for (std::size_t j = 0; j < limit_b; ++j) {
      if (a.ranking[i].metric == b.ranking[j].metric) ++out.top_k_overlap;
    }
  }
  return out;
}

std::vector<LeaveOneOutResult> leave_one_out(
    const std::vector<LabelledDataset>& workloads,
    Ensemble::TrainOptions options, util::ExecOptions exec) {
  if (workloads.size() < 2) {
    throw std::invalid_argument("leave_one_out: need at least 2 workloads");
  }
  // Each fold owns its merged training set, its ensemble, and its result
  // slot, so the folds share nothing mutable. Nested parallelism is
  // deliberately suppressed: the folds are the coarsest (and therefore
  // best-scaling) unit of work, so each fold trains serially.
  Ensemble::TrainOptions fold_options = options;
  fold_options.exec = {};
  return util::parallel_for_index(
      exec, workloads.size(), [&](std::size_t held) {
        Dataset training;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
          if (i != held) training.merge(workloads[i].data);
        }
        const Ensemble ensemble = Ensemble::train(training, fold_options);
        LeaveOneOutResult result;
        result.label = workloads[held].label;
        result.coverage = coverage(ensemble, workloads[held].data);
        result.measured_throughput = measured_throughput(workloads[held].data);
        result.estimated_throughput =
            ensemble.estimate(workloads[held].data).throughput;
        return result;
      });
}

}  // namespace spire::model
