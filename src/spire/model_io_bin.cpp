// Binary model formats v2 and v3 (see model_io.h for the v2 wire layout,
// model_bin_v3.h for the flat region v3 appends).
//
// The loader treats every input as adversarial: the magic and version are
// checked first, each metric section's byte count is bounded by a hard cap
// BEFORE its buffer is allocated and then cross-checked against the table
// sizes the section itself declares, and every multi-byte value is
// assembled explicitly from little-endian bytes so artifacts are portable
// across hosts. Truncation at any byte and bit flips anywhere must produce
// a clean std::runtime_error ("model-bin: ..." / "model-v3: ..."), never a
// crash, hang, or oversized allocation — mirroring the text loader's
// hardening. For v3 the loader additionally accumulates a streaming CRC
// over the metric sections so the flat region's whole-file CRC can be
// verified, and cross-checks the flat header's counts against the parsed
// sections: a v3 file that stream-loads is also guaranteed mappable.
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "spire/model_bin_v3.h"
#include "spire/model_io.h"
#include "util/hash.h"

namespace spire::model {

using counters::Event;
using geom::LinearPiece;
using geom::PiecewiseLinear;

namespace {

// Allocation bounds shared with the v3 flat-region validator: real fits
// have at most a few dozen corners per region; these are orders of
// magnitude above that.
constexpr std::size_t kMaxRegionCorners = v3::kMaxRegionCorners;
constexpr std::size_t kMaxMetricSections = v3::kMaxMetricSections;
constexpr std::size_t kMaxNameBytes = v3::kMaxNameBytes;

/// Fixed per-section overhead: name length, trained_on, apex pair, and the
/// two table counts (the u32 section size itself is not part of it).
constexpr std::size_t kSectionFixedBytes = 4 + 8 + 16 + 8;

/// Hard cap on one section's declared byte count, checked before any
/// allocation. Covers the largest section the bounds above allow.
constexpr std::size_t kMaxSectionBytes =
    kSectionFixedBytes + kMaxNameBytes + 16 * kMaxRegionCorners +
    32 * kMaxRegionCorners;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("model-bin: " + what);
}

// --- little-endian encoding ------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over one section buffer. Every
/// error message names the metric section and the absolute file offset of
/// the failing field.
struct SectionReader {
  const std::string& buf;
  std::size_t cursor = 0;
  std::size_t section_index;   // 0-based metric section
  std::size_t base_offset;     // file offset of the section payload

  [[noreturn]] void fail_here(const std::string& what) const {
    fail("metric section " + std::to_string(section_index) + " (at byte " +
         std::to_string(base_offset + cursor) + "): " + what);
  }

  void need(std::size_t bytes, const char* what) {
    if (buf.size() - cursor < bytes) {
      fail_here(std::string("section too short for ") + what);
    }
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[cursor + i]))
           << (8 * i);
    }
    cursor += 4;
    return v;
  }

  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(buf[cursor + i]))
           << (8 * i);
    }
    cursor += 8;
    return v;
  }

  /// Reads a double. NaN and -inf are never valid in a model artifact;
  /// +inf only where `allow_inf` says so (apex intensity, final tail x1).
  double f64(const char* what, bool allow_inf = false) {
    const double v = std::bit_cast<double>(u64(what));
    if (std::isnan(v)) fail_here(std::string(what) + " is NaN");
    if (std::isinf(v) && (!allow_inf || v < 0)) {
      fail_here(std::string(what) + " must be finite, got " +
                (v > 0 ? "inf" : "-inf"));
    }
    return v;
  }
};

}  // namespace

void append_model_bin_body(std::string& out, const Ensemble& ensemble) {
  put_u32(out, static_cast<std::uint32_t>(ensemble.rooflines().size()));
  for (const auto& [metric, roofline] : ensemble.rooflines()) {
    const std::string_view name = counters::event_name(metric);
    std::string section;
    put_u32(section, static_cast<std::uint32_t>(name.size()));
    section.append(name);
    put_u64(section, roofline.training_sample_count());
    put_f64(section, roofline.apex_intensity());
    put_f64(section, roofline.apex_throughput());

    const auto* left = roofline.left().has_value() ? &*roofline.left() : nullptr;
    // Left knots: the shared corners of the continuous chain, exactly what
    // the text format writes.
    const std::uint32_t knots =
        left == nullptr ? 0u
                        : static_cast<std::uint32_t>(left->pieces().size() + 1);
    put_u32(section, knots);
    const auto& right = roofline.right().pieces();
    put_u32(section, static_cast<std::uint32_t>(right.size()));
    if (left != nullptr) {
      put_f64(section, left->pieces().front().x0);
      put_f64(section, left->pieces().front().y0);
      for (const LinearPiece& p : left->pieces()) {
        put_f64(section, p.x1);
        put_f64(section, p.y1);
      }
    }
    for (const LinearPiece& p : right) {
      put_f64(section, p.x0);
      put_f64(section, p.y0);
      put_f64(section, p.x1);
      put_f64(section, p.y1);
    }

    put_u32(out, static_cast<std::uint32_t>(section.size()));
    out.append(section);
  }
}

void save_model_bin(const Ensemble& ensemble, std::ostream& out) {
  std::string body;
  append_model_bin_body(body, ensemble);
  out.write(kModelBinMagic.data(),
            static_cast<std::streamsize>(kModelBinMagic.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) fail("write failed");
}

Ensemble load_model_bin(std::istream& in) {
  // --- magic + version ----------------------------------------------------
  std::string magic(kModelBinMagic.size(), '\0');
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  int version = 0;
  if (static_cast<std::size_t>(in.gcount()) == magic.size()) {
    if (magic == kModelBinMagic) version = 2;
    if (magic == kModelBinMagicV3) version = 3;
  }
  if (version == 0) {
    const std::string line = magic.substr(0, magic.find('\n'));
    if (line.rfind("spire-model-bin v", 0) == 0) {
      fail("unsupported binary model format version " + line.substr(16) +
           " (this build reads v" + std::to_string(kModelBinFormatVersion) +
           " and v" + std::to_string(kModelBinV3FormatVersion) + ")");
    }
    fail("bad magic (expected '" +
         std::string(kModelBinMagic.substr(0, kModelBinMagic.size() - 1)) +
         "')");
  }

  // v3 carries a whole-file CRC in its footer; accumulate the stream CRC
  // over every byte we consume so the flat-region validator can verify it.
  std::uint32_t crc = util::crc32_init();
  if (version == 3) crc = util::crc32_update(crc, magic);

  const auto read_u32 = [&in, &crc, version](const char* what) {
    char raw[4];
    in.read(raw, 4);
    if (in.gcount() != 4) fail(std::string("truncated before ") + what);
    if (version == 3) crc = util::crc32_update(crc, std::string_view(raw, 4));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(raw[i]))
           << (8 * i);
    }
    return v;
  };

  const std::uint32_t metric_count = read_u32("metric count");
  if (metric_count > kMaxMetricSections) {
    fail("metric count " + std::to_string(metric_count) +
         " exceeds the limit of " + std::to_string(kMaxMetricSections));
  }

  std::map<Event, MetricRoofline> rooflines;
  std::size_t offset = kModelBinMagic.size() + 4;
  std::size_t total_pieces = 0;  // flat-table rows a v3 file must declare
  std::size_t total_name_bytes = 0;
  for (std::uint32_t section_index = 0; section_index < metric_count;
       ++section_index) {
    const std::uint32_t section_bytes = read_u32("section byte count");
    offset += 4;
    // The single allocation gate: nothing bigger than the cap is ever
    // resized for, no matter what the file claims.
    if (section_bytes < kSectionFixedBytes || section_bytes > kMaxSectionBytes) {
      fail("metric section " + std::to_string(section_index) +
           " (at byte " + std::to_string(offset - 4) + "): byte count " +
           std::to_string(section_bytes) + " outside [" +
           std::to_string(kSectionFixedBytes) + ", " +
           std::to_string(kMaxSectionBytes) + "]");
    }
    std::string buf(section_bytes, '\0');
    in.read(buf.data(), static_cast<std::streamsize>(section_bytes));
    if (static_cast<std::size_t>(in.gcount()) != section_bytes) {
      fail("metric section " + std::to_string(section_index) +
           " truncated: declared " + std::to_string(section_bytes) +
           " bytes, got " + std::to_string(in.gcount()));
    }
    if (version == 3) crc = util::crc32_update(crc, buf);

    SectionReader r{buf, 0, section_index, offset};
    const std::uint32_t name_len = r.u32("name length");
    if (name_len == 0 || name_len > kMaxNameBytes) {
      r.fail_here("name length " + std::to_string(name_len) +
                  " outside [1, " + std::to_string(kMaxNameBytes) + "]");
    }
    r.need(name_len, "metric name");
    const std::string name = buf.substr(r.cursor, name_len);
    r.cursor += name_len;
    const auto metric = counters::event_by_name(name);
    if (!metric) r.fail_here("unknown metric '" + name + "'");
    if (rooflines.contains(*metric)) {
      r.fail_here("duplicate metric '" + name + "'");
    }

    const std::uint64_t trained_on = r.u64("trained_on");
    const double apex_x = r.f64("apex intensity", /*allow_inf=*/true);
    const double apex_y = r.f64("apex throughput");
    const std::uint32_t left_count = r.u32("left knot count");
    const std::uint32_t right_count = r.u32("right piece count");
    if (left_count > kMaxRegionCorners) {
      r.fail_here("left knot count " + std::to_string(left_count) +
                  " exceeds the limit of " + std::to_string(kMaxRegionCorners));
    }
    if (right_count > kMaxRegionCorners) {
      r.fail_here("right piece count " + std::to_string(right_count) +
                  " exceeds the limit of " + std::to_string(kMaxRegionCorners));
    }
    // Cross-check: the declared byte count must be exactly what the tables
    // need — a mismatch means the counts and the payload disagree.
    const std::size_t expected = kSectionFixedBytes + name_len +
                                 16 * static_cast<std::size_t>(left_count) +
                                 32 * static_cast<std::size_t>(right_count);
    if (expected != section_bytes) {
      r.fail_here("section byte count " + std::to_string(section_bytes) +
                  " does not match its tables (expected " +
                  std::to_string(expected) + ")");
    }

    std::optional<PiecewiseLinear> left;
    if (left_count > 0) {
      std::vector<geom::Point> knots(left_count);
      for (auto& k : knots) {
        k.x = r.f64("left knot x");
        k.y = r.f64("left knot y");
      }
      try {
        left = PiecewiseLinear::from_knots(knots);
      } catch (const std::exception& e) {
        r.fail_here(std::string("invalid left region: ") + e.what());
      }
    }
    if (right_count == 0) r.fail_here("empty right region");
    std::vector<LinearPiece> pieces(right_count);
    for (std::uint32_t i = 0; i < right_count; ++i) {
      pieces[i].x0 = r.f64("right x0");
      pieces[i].y0 = r.f64("right y0");
      pieces[i].x1 = r.f64("right x1", /*allow_inf=*/i + 1 == right_count);
      pieces[i].y1 = r.f64("right y1");
    }
    try {
      rooflines.emplace(*metric,
                        MetricRoofline(std::move(left),
                                       PiecewiseLinear(std::move(pieces)),
                                       {apex_x, apex_y}, trained_on));
    } catch (const std::exception& e) {
      r.fail_here(std::string("invalid right region: ") + e.what());
    }
    offset += section_bytes;
    total_pieces += (left_count > 0 ? left_count - 1 : 0) + right_count;
    total_name_bytes += name_len;
  }

  if (rooflines.empty()) fail("no metrics");
  if (version == 2) {
    if (in.peek() != std::istream::traits_type::eof()) {
      fail("trailing garbage after " + std::to_string(metric_count) +
           " metric section(s) (at byte " + std::to_string(offset) + ")");
    }
    return Ensemble(std::move(rooflines));
  }

  // --- v3: validate the appended flat region --------------------------------
  // The canonical writer's flat-region size is fully determined by the
  // sections just parsed, so the allocation is bounded by construction and
  // any size deviation is a structural error.
  const auto align_up = [](std::size_t n) {
    return (n + v3::kFlatAlignment - 1) & ~(v3::kFlatAlignment - 1);
  };
  const std::size_t expected_tail =
      (align_up(offset) - offset) + v3::kFlatHeaderBytes +
      v3::kSectionCount * v3::kSectionEntryBytes +
      32 * static_cast<std::size_t>(metric_count) +
      align_up(total_name_bytes) + 48 * total_pieces + v3::kFooterBytes;
  std::string tail(expected_tail + 1, '\0');
  in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
  tail.resize(static_cast<std::size_t>(in.gcount()));
  if (tail.size() != expected_tail) {
    throw std::runtime_error(
        "model-v3: flat region has " + std::to_string(tail.size()) +
        (tail.size() > expected_tail ? "+" : "") + " byte(s) after the " +
        std::to_string(metric_count) + " metric section(s), expected " +
        std::to_string(expected_tail) + " (at byte " + std::to_string(offset) +
        ")");
  }
  const v3::FlatLayout layout = v3::check_flat_region(
      std::as_bytes(std::span(tail.data(), tail.size())), offset, crc);
  if (layout.metric_count != metric_count ||
      layout.piece_count != total_pieces) {
    throw std::runtime_error(
        "model-v3: flat header declares " +
        std::to_string(layout.metric_count) + " metric(s) / " +
        std::to_string(layout.piece_count) +
        " piece(s) but the metric sections hold " +
        std::to_string(metric_count) + " / " + std::to_string(total_pieces) +
        " (at byte " + std::to_string(layout.flat_offset + 8) + ")");
  }
  return Ensemble(std::move(rooflines));
}

void save_model_bin_file(const Ensemble& ensemble, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("model-bin: cannot write " + path);
  save_model_bin(ensemble, out);
}

Ensemble load_model_bin_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model-bin: cannot read " + path);
  return load_model_bin(in);
}

bool is_binary_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  // Any binary version counts: "spire-model-bin v" is enough to route the
  // file to the binary loader (which then reports version drift precisely).
  constexpr std::string_view kPrefix = "spire-model-bin v";
  std::string head(kPrefix.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return static_cast<std::size_t>(in.gcount()) == kPrefix.size() &&
         head == kPrefix;
}

int binary_model_file_version(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string head(kModelBinMagic.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  if (static_cast<std::size_t>(in.gcount()) != head.size()) return 0;
  if (head == kModelBinMagic) return kModelBinFormatVersion;
  if (head == kModelBinMagicV3) return kModelBinV3FormatVersion;
  return 0;
}

Ensemble load_model_any_file(const std::string& path) {
  return is_binary_model_file(path) ? load_model_bin_file(path)
                                    : load_model_file(path);
}

}  // namespace spire::model
