// Robust metric-polarity detection — the paper's stated improvement path.
//
// Paper §V (Fig. 7 discussion): BP.1's roofline correctly rises with I
// (mispredictions are harmful), but "the right fitting algorithm kicked in
// for high I values and caused this estimation to drop, inaccurately...
// it shows that our method for detecting positive and negative metrics can
// be more robust." This module implements that more robust method: a rank
// correlation between intensity and throughput classifies each metric as
// negative (more events hurt), positive (more events help), or ambiguous,
// and the constrained fit prunes the implausible region:
//   * negative metric: throughput must be non-decreasing in I_x, so the
//     descending right region is replaced by a flat cap at the apex;
//   * positive metric: the rising left region is the confounded side
//     (e.g. DB.2's wrong-path decodes), so it is dropped;
//   * ambiguous: the unconstrained fit is kept.
#pragma once

#include <span>
#include <string_view>

#include "sampling/sample.h"
#include "spire/metric_roofline.h"

namespace spire::model {

/// Learned association between a metric and performance (paper §III-B's
/// "qualitative model trends").
enum class Polarity {
  kNegative,   // more events per unit work hurt throughput (stalls, misses)
  kPositive,   // more events accompany higher throughput (DSB uops, hits)
  kAmbiguous,  // no reliable monotone trend in the training data
};

std::string_view polarity_name(Polarity polarity);

/// The evidence behind a polarity call.
struct TrendAnalysis {
  Polarity polarity = Polarity::kAmbiguous;
  double spearman = 0.0;        // rank corr. of (I_x, P) over finite samples
  std::size_t finite_samples = 0;
};

/// Classifies a metric from its training samples. |spearman| must reach
/// `threshold` (and at least 8 finite samples must exist) for a call;
/// anything weaker is ambiguous.
TrendAnalysis detect_polarity(std::span<const sampling::Sample> samples,
                              double threshold = 0.3);

/// MetricRoofline::fit with the polarity constraint applied (see above).
/// Throws like MetricRoofline::fit on unusable input.
MetricRoofline fit_with_polarity(std::span<const sampling::Sample> samples,
                                 double threshold = 0.3);

}  // namespace spire::model
