// Binary model format v3: the flattened-tables wire layout.
//
// v3 is a strict superset of v2. The file opens with the v2 payload (magic
// line aside, byte-identical encoding: metric count + per-metric sections),
// so the stream deserializer keeps working; it then appends the tables
// serve::CompiledModel would build at load time, laid out so a reader can
// point spans straight into an mmap of the file — ZERO deserialization:
//
//   "spire-model-bin v3\n"                     19 bytes
//   u32 metric count + v2 metric sections      (identical to v2)
//   zero padding to the next 8-byte boundary
//   FlatHeader                                 24 bytes, 8-aligned
//   SectionEntry x 9                           24 bytes each
//   section payloads                           each 8-aligned, zero-padded
//   Footer                                     32 bytes, last in file
//
// Sections, in file order (doubles are raw IEEE-754 little-endian bits):
//   metric-ranges  MetricRange x M   per-metric [begin,end) piece indices
//   name-index     NameRef x M       (offset, length) into `strings`
//   strings        bytes             metric names, concatenated in order
//   x0,y0,x1,y1    f64 x P           shared SoA segment-endpoint tables
//   slopes         f64 x P           (y1-y0)/(x1-x0); 0 for vertical/inf
//   intercepts     f64 x P           y0 - slope*x0; y0 for vertical/inf
//
// Evaluation uses the ENDPOINT tables only — the bit-identity contract
// replays LinearPiece::at's exact arithmetic. slopes/intercepts are
// precomputed convenience tables for downstream fast paths and are
// CRC-protected like everything else, but never consulted by the
// bit-identical evaluator.
//
// Integrity model — two tiers (see Verify below), both running BEFORE any
// pointer or span is formed:
//   * STRUCTURE (every open): Footer.file_size must equal the actual byte
//     count (for a mapping: the fstat size re-checked at map time) —
//     truncation or growth after write is caught structurally, never by a
//     SIGBUS; every section offset/byte-count is bounds- and
//     alignment-checked against file_size; metric ranges must tile the
//     piece tables and the name index must exactly cover the strings
//     section, so no validated span can be indexed out of bounds. All of
//     this is O(sections + metrics) — no pass over the table bytes, which
//     is what lets a mapped open stay cheap at any artifact size.
//   * FULL (publish / strict load / lint): everything above, plus each
//     section's CRC (pinpoint diagnostics), the whole-file CRC covering
//     every byte before the footer (any bit flip anywhere is detected),
//     and the per-piece value policy (NaN/inf placement).
// Every failure throws std::runtime_error("model-v3: ...") naming the
// section and absolute byte offset.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace spire::model::v3 {

// Shared hardening caps (the v2 loader enforces the same bounds).
inline constexpr std::size_t kMaxMetricSections = 65'536;
inline constexpr std::size_t kMaxRegionCorners = 65'536;
inline constexpr std::size_t kMaxNameBytes = 256;

inline constexpr std::uint64_t kFlatMagic = 0x33544C4652495053ull;    // "SPIRFLT3"
inline constexpr std::uint64_t kFooterMagic = 0x444E453352495053ull;  // "SPIR3END"
inline constexpr std::size_t kFlatAlignment = 8;
inline constexpr std::size_t kFlatHeaderBytes = 24;
inline constexpr std::size_t kSectionEntryBytes = 24;
inline constexpr std::size_t kFooterBytes = 32;

/// Section kinds, in required file order.
enum class Section : std::uint32_t {
  kMetricRanges = 0,
  kNameIndex = 1,
  kStrings = 2,
  kX0 = 3,
  kY0 = 4,
  kX1 = 5,
  kY1 = 6,
  kSlopes = 7,
  kIntercepts = 8,
};
inline constexpr std::uint32_t kSectionCount = 9;

std::string_view section_name(Section section);

/// One metric's slice of the shared segment tables: half-open piece index
/// ranges plus the cached left-region domain max. This struct IS the
/// on-disk record of the metric-ranges section (and the in-memory row the
/// serving evaluators iterate), so a mapped reader's ranges span points
/// directly at the file bytes.
struct MetricRange {
  std::uint32_t left_begin = 0;
  std::uint32_t left_end = 0;
  std::uint32_t right_begin = 0;
  std::uint32_t right_end = 0;
  double left_max = 0.0;  // left domain_max; 0 when the left region is absent

  bool has_left() const { return left_begin != left_end; }
};
static_assert(sizeof(MetricRange) == 24 && alignof(MetricRange) == 8,
              "MetricRange must match the v3 metric-ranges record layout");

/// One name-index record: a metric name's (offset, length) in `strings`.
struct NameRef {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};
static_assert(sizeof(NameRef) == 8,
              "NameRef must match the v3 name-index record layout");

struct SectionExtent {
  std::size_t offset = 0;  // absolute file offset, 8-aligned
  std::size_t bytes = 0;   // payload bytes (excluding inter-section padding)
  std::uint32_t crc = 0;
};

/// The byte-level validated layout of a v3 artifact's flat region.
struct FlatLayout {
  std::size_t flat_offset = 0;  // absolute offset of the FlatHeader
  std::size_t file_size = 0;    // total artifact bytes, footer included
  std::uint32_t metric_count = 0;
  std::uint32_t piece_count = 0;
  std::array<SectionExtent, kSectionCount> sections{};

  const SectionExtent& section(Section s) const {
    return sections[static_cast<std::size_t>(s)];
  }
};

/// Verification tiers (see the integrity model above). kStructure is every
/// check required for memory safety of a zero-copy reader, in
/// O(sections + metrics); kFull adds the per-byte work — section CRCs,
/// whole-file CRC, per-piece value policy. Artifacts are fully verified
/// when they enter the system (publish, strict load, lint); readers of
/// immutable published objects open at kStructure so cold-start cost never
/// scales with table bytes.
enum class Verify { kStructure, kFull };

/// Validates the flat region + footer that occupy the tail of a v3
/// artifact. `region` holds the artifact bytes [region_base, file_size);
/// `crc_before_region` is the streaming CRC state (util::crc32_init() /
/// crc32_update()) of the bytes before the region, so the whole-file CRC
/// can be verified regardless of how the caller obtained the tail (it is
/// ignored at Verify::kStructure). All reads are alignment-safe and
/// endianness-independent; no allocation is proportional to file contents.
/// Throws std::runtime_error("model-v3: ...") with the section and
/// absolute byte offset on any defect.
FlatLayout check_flat_region(std::span<const std::byte> region,
                             std::size_t region_base,
                             std::uint32_t crc_before_region,
                             Verify verify = Verify::kFull);

/// Typed zero-copy view over a fully validated artifact. Spans point into
/// the caller's (typically mmap'd) buffer; no table is copied.
struct FlatView {
  FlatLayout layout;
  std::span<const MetricRange> ranges;
  std::span<const NameRef> names;
  std::string_view strings;
  std::span<const double> x0, y0, x1, y1, slopes, intercepts;

  std::string_view name(const NameRef& ref) const {
    return strings.substr(ref.offset, ref.length);
  }
};

/// Validates `file` — an entire v3 artifact, magic line included — and
/// forms the typed view. Beyond check_flat_region this also requires a
/// little-endian IEEE-754 host and 8-aligned storage (an mmap base is
/// page-aligned, and every section offset is 8-aligned, so both hold for
/// mapped files). Throws std::runtime_error("model-v3: ...").
FlatView map_flat(std::span<const std::byte> file,
                  Verify verify = Verify::kFull);

/// The writer's input: flattened tables spanning caller-owned storage
/// (serve::CompiledModel's columns, which guarantees the file tables equal
/// the compiled tables by construction).
struct FlatTables {
  std::span<const std::string_view> names;  // per metric, file order
  std::span<const MetricRange> ranges;      // parallel to names
  std::span<const double> x0, y0, x1, y1;   // shared segment tables
};

/// Appends padding + FlatHeader + section table + payloads + Footer to
/// `out`, which must already hold the v3 magic and the v2 payload. Derives
/// the slopes/intercepts tables from the endpoints.
void append_flat(std::string& out, const FlatTables& tables);

}  // namespace spire::model::v3
