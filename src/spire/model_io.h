// Ensemble persistence. Two formats:
//
// Text v1 — line-oriented, diffable, hand-editable:
//
//   spire-model v1
//   metric <perf-event-name> trained_on=<n> apex=<I> <P>
//   left <k> x0 y0 x1 y1 ... (knots; "left 0" when absent)
//   right <k> x0 y0 x1 y1 ... (piece corners; x of the last corner may be
//                              "inf"; pieces may be discontinuous)
//
// Binary v2 — the deployment artifact (serve::CompiledModel loads in one
// pass, no float parsing). Layout, all integers and IEEE-754 doubles
// little-endian fixed-width:
//
//   magic line  "spire-model-bin v2\n" (19 bytes, file(1)-friendly)
//   u32         metric section count
//   per metric section:
//     u32       section byte count (everything after this field; validated
//               against both a hard cap and the declared table sizes BEFORE
//               any allocation — a corrupt count can never balloon memory)
//     u32       metric name length, then the perf-style name bytes
//     u64       trained_on
//     f64 f64   apex intensity, apex throughput
//     u32 u32   left knot count, right piece count
//     f64 pairs left knots (x y)...
//     f64 quads right pieces (x0 y0 x1 y1)...
//
// Conversion between the two is lossless in both directions: text values
// are written with max precision (shortest-17 round-trips every double)
// and binary values are the raw bit patterns.
//
// Binary v3 — v2 plus an appended flattened-tables region laid out for
// zero-copy mmap serving (see spire/model_bin_v3.h for the wire layout and
// serve/mapped_model.h for the reader). load_model_bin accepts v2 and v3;
// for v3 it additionally validates the flat region (per-section CRCs,
// whole-file CRC, structural and semantic checks) and cross-checks the
// flat header's counts against the parsed metric sections, so a v3 file
// that stream-loads is also guaranteed mappable. The v3 WRITER lives in
// serve/model_v3.h: the flat tables are produced by serve::CompiledModel,
// which makes file tables equal compiled tables by construction.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "spire/ensemble.h"

namespace spire::model {

/// Format version this build reads and writes. Bump when the on-disk shape
/// changes; load_model rejects other versions with a message naming both,
/// and the lint `format-version` rule flags them statically.
inline constexpr int kModelFormatVersion = 1;

/// Exact first line of a model file ("spire-model v1").
inline constexpr std::string_view kModelHeader = "spire-model v1";

void save_model(const Ensemble& ensemble, std::ostream& out);

/// Throws std::runtime_error on malformed input or unknown metric names.
/// Hardened against adversarial files: region sizes are bounded before any
/// allocation, values must be finite except the documented trailing "inf"
/// right corner, and every error message carries the 1-based line number.
Ensemble load_model(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_model_file(const Ensemble& ensemble, const std::string& path);
Ensemble load_model_file(const std::string& path);

/// Binary format version this build reads and writes.
inline constexpr int kModelBinFormatVersion = 2;

/// Exact leading bytes of a binary v2 model file.
inline constexpr std::string_view kModelBinMagic = "spire-model-bin v2\n";

void save_model_bin(const Ensemble& ensemble, std::ostream& out);

/// Throws std::runtime_error ("model-bin: ...", with the metric section and
/// byte offset) on malformed input. Hardened like the text loader: every
/// section byte count is bounded and cross-checked against the declared
/// table sizes before allocation, values must be finite except the
/// documented apex/tail infinities, and truncation at any byte is a clean
/// rejection, never a crash or over-allocation.
Ensemble load_model_bin(std::istream& in);

void save_model_bin_file(const Ensemble& ensemble, const std::string& path);
Ensemble load_model_bin_file(const std::string& path);

/// Newest binary format version this build writes (via serve/model_v3.h).
inline constexpr int kModelBinV3FormatVersion = 3;

/// Exact leading bytes of a binary v3 model file.
inline constexpr std::string_view kModelBinMagicV3 = "spire-model-bin v3\n";

/// Appends the shared v2/v3 body (u32 metric count + per-metric sections,
/// everything after the magic line) to `out`. save_model_bin and the v3
/// writer both serialize through this, so the v2-compatible prefix of a v3
/// file is byte-identical to a v2 file of the same ensemble.
void append_model_bin_body(std::string& out, const Ensemble& ensemble);

/// True when `path` starts with the binary magic (any binary version).
bool is_binary_model_file(const std::string& path);

/// Sniffs the leading bytes of `path`: returns 2 or 3 for binary model
/// files, 0 for anything else (text models, missing files, short files).
int binary_model_file_version(const std::string& path);

/// Loads either format, sniffing the leading bytes of the file.
Ensemble load_model_any_file(const std::string& path);

}  // namespace spire::model
