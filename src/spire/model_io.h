// Ensemble persistence: save a trained SPIRE model to a text stream and
// load it back. The format is line-oriented and versioned:
//
//   spire-model v1
//   metric <perf-event-name> trained_on=<n> apex=<I> <P>
//   left <k> x0 y0 x1 y1 ... (knots; "left 0" when absent)
//   right <k> x0 y0 x1 y1 ... (piece corners; x of the last corner may be
//                              "inf"; pieces may be discontinuous)
//
// Exact round-trip is guaranteed: values are written with max precision.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "spire/ensemble.h"

namespace spire::model {

/// Format version this build reads and writes. Bump when the on-disk shape
/// changes; load_model rejects other versions with a message naming both,
/// and the lint `format-version` rule flags them statically.
inline constexpr int kModelFormatVersion = 1;

/// Exact first line of a model file ("spire-model v1").
inline constexpr std::string_view kModelHeader = "spire-model v1";

void save_model(const Ensemble& ensemble, std::ostream& out);

/// Throws std::runtime_error on malformed input or unknown metric names.
/// Hardened against adversarial files: region sizes are bounded before any
/// allocation, values must be finite except the documented trailing "inf"
/// right corner, and every error message carries the 1-based line number.
Ensemble load_model(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_model_file(const Ensemble& ensemble, const std::string& path);
Ensemble load_model_file(const std::string& path);

}  // namespace spire::model
