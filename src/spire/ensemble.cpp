#include "spire/ensemble.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "spire/polarity.h"

namespace spire::model {

using counters::Event;
using sampling::DatasetView;
using sampling::Sample;

Ensemble::Ensemble(std::map<Event, MetricRoofline> rooflines)
    : rooflines_(std::move(rooflines)) {}

namespace {

/// One metric's training outcome: a fitted roofline or the skip reason.
struct FitOutcome {
  std::optional<MetricRoofline> roofline;
  std::string skip_reason;
};

FitOutcome fit_metric(std::span<const Sample> samples,
                      const Ensemble::TrainOptions& options) {
  FitOutcome out;
  std::size_t usable = 0;
  for (const Sample& s : samples) {
    if (s.t > 0.0) ++usable;
  }
  if (usable < options.min_samples) {
    out.skip_reason = "only " + std::to_string(usable) + " usable samples (min " +
                      std::to_string(options.min_samples) + ")";
    return out;
  }
  // An untrainable metric (degenerate or corrupt series) must not kill
  // the whole ensemble: record why and move on.
  try {
    if (options.polarity_constrained) {
      out.roofline = fit_with_polarity(samples, options.polarity_threshold);
    } else {
      out.roofline = MetricRoofline::fit(samples);
    }
  } catch (const std::exception& e) {
    out.skip_reason = std::string("fit failed: ") + e.what();
  }
  return out;
}

}  // namespace

Ensemble Ensemble::train(DatasetView data, TrainOptions options) {
  const std::vector<Event>& metrics = data.metrics();

  // Each fit reads only its own metric's span, so the fan-out is free of
  // shared mutable state; collecting outcomes by metric index keeps the
  // rooflines map and the skipped list in exactly the serial order.
  auto outcomes = util::parallel_for_index(
      options.exec, metrics.size(), [&](std::size_t i) {
        return fit_metric(data.samples(metrics[i]), options);
      });

  std::map<Event, MetricRoofline> rooflines;
  std::vector<SkippedMetric> skipped;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (outcomes[i].roofline.has_value()) {
      rooflines.emplace(metrics[i], std::move(*outcomes[i].roofline));
    } else {
      skipped.push_back({metrics[i], std::move(outcomes[i].skip_reason)});
    }
  }

  if (rooflines.empty()) {
    std::string what = "ensemble: no trainable metric";
    for (const SkippedMetric& s : skipped) {
      what += "\n  ";
      what += counters::event_name(s.metric);
      what += ": ";
      what += s.reason;
    }
    throw std::invalid_argument(what);
  }
  Ensemble out(std::move(rooflines));
  out.skipped_ = std::move(skipped);
  return out;
}

namespace {

std::optional<double> merge_samples(const MetricRoofline& roofline,
                                    std::span<const Sample> samples,
                                    Merge merge, std::size_t* count_out) {
  double weighted = 0.0;
  double weight = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples) {
    // Skip structurally unusable samples (corrupt fields would otherwise
    // turn into NaN intensities and abort the whole estimation).
    if (s.t <= 0.0 || !std::isfinite(s.t) || !std::isfinite(s.w) ||
        !std::isfinite(s.m) || s.w < 0.0 || s.m < 0.0) {
      continue;
    }
    const double p = roofline.estimate(s.intensity());
    const double w = merge == Merge::kTimeWeighted ? s.t : 1.0;
    weighted += w * p;
    weight += w;
    ++count;
  }
  if (count == 0 || weight <= 0.0) return std::nullopt;
  if (count_out != nullptr) *count_out = count;
  return weighted / weight;
}

}  // namespace

std::optional<double> Ensemble::metric_estimate(Event metric,
                                                DatasetView workload,
                                                Merge merge) const {
  const auto it = rooflines_.find(metric);
  if (it == rooflines_.end()) return std::nullopt;
  return merge_samples(it->second, workload.samples(metric), merge, nullptr);
}

Estimate Ensemble::estimate(DatasetView workload, Merge merge,
                            util::ExecOptions exec) const {
  // Materialize the map in its (ordered) iteration order so per-metric
  // tasks can be indexed; results are then consumed in that same order,
  // making the ranking and skip reporting independent of scheduling.
  std::vector<const std::pair<const Event, MetricRoofline>*> entries;
  entries.reserve(rooflines_.size());
  for (const auto& entry : rooflines_) entries.push_back(&entry);

  struct PerMetric {
    std::optional<double> p_bar;
    std::size_t count = 0;
  };
  auto merged = util::parallel_for_index(
      exec, entries.size(), [&](std::size_t i) {
        PerMetric out;
        out.p_bar = merge_samples(entries[i]->second,
                                  workload.samples(entries[i]->first), merge,
                                  &out.count);
        return out;
      });

  Estimate out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Event metric = entries[i]->first;
    if (!merged[i].p_bar.has_value()) {
      out.skipped.push_back({metric, workload.samples(metric).empty()
                                         ? "no samples in workload"
                                         : "no structurally usable samples"});
      continue;
    }
    out.ranking.push_back({metric, *merged[i].p_bar, merged[i].count});
  }
  if (out.ranking.empty()) {
    throw std::invalid_argument(
        "ensemble: workload shares no metric with the model");
  }
  std::sort(out.ranking.begin(), out.ranking.end(),
            [](const MetricEstimate& a, const MetricEstimate& b) {
              return a.p_bar < b.p_bar;
            });
  out.throughput = out.ranking.front().p_bar;
  return out;
}

}  // namespace spire::model
