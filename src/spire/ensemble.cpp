#include "spire/ensemble.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spire/polarity.h"

namespace spire::model {

using counters::Event;
using sampling::Dataset;
using sampling::Sample;

Ensemble::Ensemble(std::map<Event, MetricRoofline> rooflines)
    : rooflines_(std::move(rooflines)) {}

Ensemble Ensemble::train(const Dataset& data, TrainOptions options) {
  std::map<Event, MetricRoofline> rooflines;
  std::vector<SkippedMetric> skipped;
  for (const Event metric : data.metrics()) {
    const auto& samples = data.samples(metric);
    std::size_t usable = 0;
    for (const Sample& s : samples) {
      if (s.t > 0.0) ++usable;
    }
    if (usable < options.min_samples) {
      skipped.push_back({metric, "only " + std::to_string(usable) +
                                     " usable samples (min " +
                                     std::to_string(options.min_samples) +
                                     ")"});
      continue;
    }
    // An untrainable metric (degenerate or corrupt series) must not kill
    // the whole ensemble: record why and move on.
    try {
      if (options.polarity_constrained) {
        rooflines.emplace(
            metric, fit_with_polarity(samples, options.polarity_threshold));
      } else {
        rooflines.emplace(metric, MetricRoofline::fit(samples));
      }
    } catch (const std::exception& e) {
      skipped.push_back({metric, std::string("fit failed: ") + e.what()});
    }
  }
  if (rooflines.empty()) {
    std::string what = "ensemble: no trainable metric";
    for (const SkippedMetric& s : skipped) {
      what += "\n  ";
      what += counters::event_name(s.metric);
      what += ": ";
      what += s.reason;
    }
    throw std::invalid_argument(what);
  }
  Ensemble out(std::move(rooflines));
  out.skipped_ = std::move(skipped);
  return out;
}

namespace {

std::optional<double> merge_samples(const MetricRoofline& roofline,
                                    const std::vector<Sample>& samples,
                                    Merge merge, std::size_t* count_out) {
  double weighted = 0.0;
  double weight = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples) {
    // Skip structurally unusable samples (corrupt fields would otherwise
    // turn into NaN intensities and abort the whole estimation).
    if (s.t <= 0.0 || !std::isfinite(s.t) || !std::isfinite(s.w) ||
        !std::isfinite(s.m) || s.w < 0.0 || s.m < 0.0) {
      continue;
    }
    const double p = roofline.estimate(s.intensity());
    const double w = merge == Merge::kTimeWeighted ? s.t : 1.0;
    weighted += w * p;
    weight += w;
    ++count;
  }
  if (count == 0 || weight <= 0.0) return std::nullopt;
  if (count_out != nullptr) *count_out = count;
  return weighted / weight;
}

}  // namespace

std::optional<double> Ensemble::metric_estimate(Event metric,
                                                const Dataset& workload,
                                                Merge merge) const {
  const auto it = rooflines_.find(metric);
  if (it == rooflines_.end()) return std::nullopt;
  return merge_samples(it->second, workload.samples(metric), merge, nullptr);
}

Estimate Ensemble::estimate(const Dataset& workload, Merge merge) const {
  Estimate out;
  for (const auto& [metric, roofline] : rooflines_) {
    std::size_t count = 0;
    const auto p_bar =
        merge_samples(roofline, workload.samples(metric), merge, &count);
    if (!p_bar.has_value()) {
      out.skipped.push_back({metric, workload.samples(metric).empty()
                                         ? "no samples in workload"
                                         : "no structurally usable samples"});
      continue;
    }
    out.ranking.push_back({metric, *p_bar, count});
  }
  if (out.ranking.empty()) {
    throw std::invalid_argument(
        "ensemble: workload shares no metric with the model");
  }
  std::sort(out.ranking.begin(), out.ranking.end(),
            [](const MetricEstimate& a, const MetricEstimate& b) {
              return a.p_bar < b.p_bar;
            });
  out.throughput = out.ranking.front().p_bar;
  return out;
}

}  // namespace spire::model
