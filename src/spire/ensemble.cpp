#include "spire/ensemble.h"

#include <algorithm>
#include <stdexcept>

#include "spire/polarity.h"

namespace spire::model {

using counters::Event;
using sampling::Dataset;
using sampling::Sample;

Ensemble::Ensemble(std::map<Event, MetricRoofline> rooflines)
    : rooflines_(std::move(rooflines)) {}

Ensemble Ensemble::train(const Dataset& data, TrainOptions options) {
  std::map<Event, MetricRoofline> rooflines;
  for (const Event metric : data.metrics()) {
    const auto& samples = data.samples(metric);
    std::size_t usable = 0;
    for (const Sample& s : samples) {
      if (s.t > 0.0) ++usable;
    }
    if (usable < options.min_samples) continue;
    if (options.polarity_constrained) {
      rooflines.emplace(metric,
                        fit_with_polarity(samples, options.polarity_threshold));
    } else {
      rooflines.emplace(metric, MetricRoofline::fit(samples));
    }
  }
  if (rooflines.empty()) {
    throw std::invalid_argument("ensemble: no trainable metric");
  }
  return Ensemble(std::move(rooflines));
}

namespace {

std::optional<double> merge_samples(const MetricRoofline& roofline,
                                    const std::vector<Sample>& samples,
                                    Merge merge, std::size_t* count_out) {
  double weighted = 0.0;
  double weight = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples) {
    if (s.t <= 0.0) continue;
    const double p = roofline.estimate(s.intensity());
    const double w = merge == Merge::kTimeWeighted ? s.t : 1.0;
    weighted += w * p;
    weight += w;
    ++count;
  }
  if (count == 0 || weight <= 0.0) return std::nullopt;
  if (count_out != nullptr) *count_out = count;
  return weighted / weight;
}

}  // namespace

std::optional<double> Ensemble::metric_estimate(Event metric,
                                                const Dataset& workload,
                                                Merge merge) const {
  const auto it = rooflines_.find(metric);
  if (it == rooflines_.end()) return std::nullopt;
  return merge_samples(it->second, workload.samples(metric), merge, nullptr);
}

Estimate Ensemble::estimate(const Dataset& workload, Merge merge) const {
  Estimate out;
  for (const auto& [metric, roofline] : rooflines_) {
    std::size_t count = 0;
    const auto p_bar =
        merge_samples(roofline, workload.samples(metric), merge, &count);
    if (!p_bar.has_value()) continue;
    out.ranking.push_back({metric, *p_bar, count});
  }
  if (out.ranking.empty()) {
    throw std::invalid_argument(
        "ensemble: workload shares no metric with the model");
  }
  std::sort(out.ranking.begin(), out.ranking.end(),
            [](const MetricEstimate& a, const MetricEstimate& b) {
              return a.p_bar < b.p_bar;
            });
  out.throughput = out.ranking.front().p_bar;
  return out;
}

}  // namespace spire::model
