// Model validation utilities: bound-coverage measurement, ranking
// agreement, and leave-one-workload-out cross-validation.
//
// A SPIRE roofline is an upper bound learned from finite data, so its
// quality question is statistical: how often do HELD-OUT samples stay at or
// below their per-sample bound, and how stable are the metric rankings
// across training sets? These utilities quantify both; the cross-validation
// bench (bench/validation_loo) applies them to the full suite.
#pragma once

#include <string>
#include <vector>

#include "sampling/dataset.h"
#include "sampling/dataset_view.h"
#include "spire/analyzer.h"
#include "spire/ensemble.h"

namespace spire::model {

/// Fraction of a dataset's samples lying on-or-below their roofline bound.
struct CoverageReport {
  std::size_t total = 0;    // usable samples of metrics the model knows
  std::size_t covered = 0;  // samples with P <= bound(I) (+tolerance)
  double worst_excess = 0.0;  // max P/bound among violators (1.0 if none)

  double fraction() const {
    return total > 0 ? static_cast<double>(covered) / static_cast<double>(total)
                     : 1.0;
  }
};

/// Measures bound coverage of `data` under `ensemble`.
CoverageReport coverage(const Ensemble& ensemble, sampling::DatasetView data,
                        double tolerance = 1e-9);

/// Agreement between two analyses of the same workload.
struct RankAgreement {
  double spearman = 0.0;  // rank correlation over shared metrics
  int top_k_overlap = 0;  // shared metrics among both top-k lists
  int k = 10;
};

RankAgreement compare_rankings(const Analyzer::Analysis& a,
                               const Analyzer::Analysis& b, int k = 10);

/// One labelled workload dataset for cross-validation.
struct LabelledDataset {
  std::string label;
  sampling::Dataset data;
};

/// Result of holding one workload out.
struct LeaveOneOutResult {
  std::string label;
  CoverageReport coverage;          // held-out coverage
  double measured_throughput = 0.0;
  double estimated_throughput = 0.0;  // ensemble min on the held-out data
};

/// Leave-one-out cross-validation: for each workload, train on all the
/// others and evaluate the bound on the held-out one. Throws
/// std::invalid_argument for fewer than 2 workloads. Folds are independent,
/// so `exec` runs them as pool tasks (each fold's own training stays serial
/// to avoid nested pools); results are ordered by fold index and
/// bit-identical to the serial run.
std::vector<LeaveOneOutResult> leave_one_out(
    const std::vector<LabelledDataset>& workloads,
    Ensemble::TrainOptions options = {}, util::ExecOptions exec = {});

}  // namespace spire::model
