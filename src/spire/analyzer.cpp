#include "spire/analyzer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>

namespace spire::model {

using counters::Event;
using counters::TmaArea;
using sampling::DatasetView;
using sampling::Sample;

double measured_throughput(DatasetView workload) {
  const auto& metrics = workload.metrics();
  if (metrics.empty()) {
    throw std::invalid_argument("analyzer: empty workload dataset");
  }
  // All metrics share the window T and W values; any series works, but the
  // one with the most samples covers the most execution.
  std::span<const Sample> best;
  for (const Event metric : metrics) {
    const auto s = workload.samples(metric);
    if (s.size() > best.size()) best = s;
  }
  double work = 0.0;
  double time = 0.0;
  for (const Sample& s : best) {
    // Corrupt windows (NaN fields, zero/negative periods) must not poison
    // the whole-run average; the quality layer reports them separately.
    if (!std::isfinite(s.t) || !std::isfinite(s.w) || s.t <= 0.0 || s.w < 0.0) {
      continue;
    }
    work += s.w;
    time += s.t;
  }
  if (time <= 0.0) throw std::invalid_argument("analyzer: zero total time");
  return work / time;
}

Analyzer::Analysis Analyzer::analyze(DatasetView workload,
                                     util::ExecOptions exec) const {
  Analysis out;
  out.measured_throughput = measured_throughput(workload);
  Estimate estimate = ensemble_->estimate(workload, Merge::kTimeWeighted, exec);
  out.estimated_throughput = estimate.throughput;
  out.skipped = std::move(estimate.skipped);
  out.ranking.reserve(estimate.ranking.size());
  for (const MetricEstimate& me : estimate.ranking) {
    const auto& info = counters::event_info(me.metric);
    out.ranking.push_back(
        {me.metric, me.p_bar, info.area, info.name, info.abbrev});
  }
  return out;
}

std::vector<RankedMetric> Analyzer::bottleneck_pool(const Analysis& analysis,
                                                    double tolerance) {
  std::vector<RankedMetric> pool;
  if (analysis.ranking.empty()) return pool;
  const double floor = analysis.ranking.front().p_bar;
  for (const RankedMetric& rm : analysis.ranking) {
    if (rm.p_bar <= floor * (1.0 + tolerance)) pool.push_back(rm);
  }
  return pool;
}

int Analyzer::area_count_in_top(const Analysis& analysis, TmaArea area,
                                int k) {
  int count = 0;
  const int limit = std::min<int>(k, static_cast<int>(analysis.ranking.size()));
  for (int i = 0; i < limit; ++i) {
    if (analysis.ranking[static_cast<std::size_t>(i)].area == area) ++count;
  }
  return count;
}

TmaArea Analyzer::dominant_area(const Analysis& analysis, int k) {
  // Rank-weighted vote: the metric ranked first says the most about the
  // bottleneck, so areas are scored by sum(1 / rank) over the top k.
  // Retiring/Other metrics do not vote for a bottleneck class.
  std::array<double, 6> votes{};
  const int limit = std::min<int>(k, static_cast<int>(analysis.ranking.size()));
  for (int i = 0; i < limit; ++i) {
    const auto area = analysis.ranking[static_cast<std::size_t>(i)].area;
    if (area == TmaArea::kRetiring || area == TmaArea::kOther) continue;
    votes[static_cast<std::size_t>(area)] += 1.0 / static_cast<double>(i + 1);
  }
  int best = 0;
  for (int a = 1; a < 4; ++a) {
    if (votes[static_cast<std::size_t>(a)] > votes[static_cast<std::size_t>(best)]) best = a;
  }
  return static_cast<TmaArea>(best);
}

}  // namespace spire::model
