// The SPIRE ensemble (paper §III-C, Figs. 3-4).
//
// Training groups samples by performance metric and fits one MetricRoofline
// per metric. Estimation gives each sample a per-metric estimate, merges
// them with the time-weighted average of Eq. (1), and takes the minimum
// across metrics as the ensemble-wide attainable-throughput estimate.
//
// Because each metric's roofline is independent, both training and
// estimation fan out across a thread pool when ExecOptions request it.
// Determinism is a hard contract: per-metric results are collected by
// metric index, never by completion order, so the parallel output — models,
// ranking, skipped-metric reporting — is bit-identical to the serial one.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "counters/events.h"
#include "sampling/dataset_view.h"
#include "spire/metric_roofline.h"
#include "util/thread_pool.h"

namespace spire::model {

/// How per-sample estimates merge into a per-metric value. The paper uses
/// the time-weighted average (Eq. 1); the unweighted mean exists for the
/// ablation bench.
enum class Merge { kTimeWeighted, kUnweighted };

/// One metric's merged estimate for a workload.
struct MetricEstimate {
  counters::Event metric{};
  double p_bar = 0.0;        // Eq. (1) average estimate
  std::size_t samples = 0;   // samples that contributed
};

/// A metric the pipeline routed around instead of aborting on: untrainable
/// during Ensemble::train, or without usable samples during estimation.
struct SkippedMetric {
  counters::Event metric{};
  std::string reason;
};

/// A full ensemble estimation result.
struct Estimate {
  /// Ensemble-wide attainable throughput: min over per-metric averages.
  double throughput = 0.0;
  /// Per-metric averages sorted ascending by p_bar (the paper's ranking:
  /// lowest values are the likeliest bottlenecks).
  std::vector<MetricEstimate> ranking;
  /// Ensemble metrics that contributed nothing (no usable workload samples).
  std::vector<SkippedMetric> skipped;
};

class Ensemble {
 public:
  /// Options controlling training.
  struct TrainOptions {
    /// Metrics with fewer usable samples than this are skipped (a roofline
    /// fit to a handful of points is noise).
    std::size_t min_samples = 8;
    /// Apply the robust polarity constraint (spire/polarity.h): negative
    /// metrics keep a flat right region, positive metrics drop the
    /// confounded left region. Off by default — the paper's base model.
    bool polarity_constrained = false;
    /// |Spearman| needed for a polarity call when constraining.
    double polarity_threshold = 0.3;
    /// Per-metric fits run as pool tasks when threads > 1; the default
    /// keeps training serial. Output is bit-identical either way.
    util::ExecOptions exec{};
  };

  /// Fits one roofline per metric present in `data`. Metrics that cannot be
  /// fit (too few usable samples, degenerate series, fit failure) are
  /// skipped and recorded in skipped(); only when *no* metric survives does
  /// train throw std::invalid_argument (listing the per-metric reasons).
  static Ensemble train(sampling::DatasetView data, TrainOptions options);
  static Ensemble train(sampling::DatasetView data) {
    return train(data, TrainOptions{});
  }

  /// Builds an ensemble from pre-fitted rooflines (deserialization path).
  explicit Ensemble(std::map<counters::Event, MetricRoofline> rooflines);

  /// Metrics train() saw but could not fit, with the reason for each.
  const std::vector<SkippedMetric>& skipped() const { return skipped_; }

  /// Estimates a workload's attainable throughput from its samples.
  /// Metrics absent from the ensemble are ignored; ensemble metrics with no
  /// usable workload samples land in Estimate::skipped. Throws
  /// std::invalid_argument only when nothing overlaps at all. Per-metric
  /// Eq. (1) averages run in parallel when `exec` requests threads.
  Estimate estimate(sampling::DatasetView workload,
                    Merge merge = Merge::kTimeWeighted,
                    util::ExecOptions exec = {}) const;

  /// Per-metric average estimate for one metric, or nullopt when the
  /// ensemble has no roofline for it or the workload has no samples.
  std::optional<double> metric_estimate(
      counters::Event metric, sampling::DatasetView workload,
      Merge merge = Merge::kTimeWeighted) const;

  const std::map<counters::Event, MetricRoofline>& rooflines() const {
    return rooflines_;
  }

  std::size_t metric_count() const { return rooflines_.size(); }

 private:
  std::map<counters::Event, MetricRoofline> rooflines_;
  std::vector<SkippedMetric> skipped_;
};

}  // namespace spire::model
