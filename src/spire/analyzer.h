// Bottleneck analysis on top of a trained ensemble (paper §III-C,
// "Performance analysis"): rank metrics by their average estimates, keep a
// pool of low-valued metrics as bottleneck candidates, and aggregate the
// pool by microarchitecture area for comparison against TMA.
#pragma once

#include <string>
#include <vector>

#include "counters/events.h"
#include "sampling/dataset_view.h"
#include "spire/ensemble.h"

namespace spire::model {

/// One ranked metric with its catalog metadata attached.
struct RankedMetric {
  counters::Event metric{};
  double p_bar = 0.0;
  counters::TmaArea area{};
  std::string_view name;
  std::string_view abbrev;
};

class Analyzer {
 public:
  explicit Analyzer(const Ensemble& ensemble) : ensemble_(&ensemble) {}

  /// All metrics ranked ascending by average estimate (lowest first =
  /// likeliest bottleneck), with measured throughput attached.
  struct Analysis {
    double measured_throughput = 0.0;  // time-weighted measured P
    double estimated_throughput = 0.0; // ensemble estimate (min of averages)
    std::vector<RankedMetric> ranking;
    /// Ensemble metrics that could not contribute (no usable samples in the
    /// workload) — reported, not fatal, so one bad series never aborts an
    /// analysis that other metrics can still support.
    std::vector<SkippedMetric> skipped;
  };
  /// `exec` fans the underlying per-metric estimation across a pool;
  /// results are bit-identical to the serial default.
  Analysis analyze(sampling::DatasetView workload,
                   util::ExecOptions exec = {}) const;

  /// The paper's "pool of low-valued metrics": every metric whose average
  /// estimate is within `tolerance` (relative) of the minimum.
  static std::vector<RankedMetric> bottleneck_pool(const Analysis& analysis,
                                                   double tolerance = 0.25);

  /// Majority TMA area among the top `k` ranked metrics — the coarse
  /// bottleneck class used to compare against TMA's classification.
  static counters::TmaArea dominant_area(const Analysis& analysis, int k = 10);

  /// How many of the top `k` ranked metrics belong to `area`. The paper's
  /// agreement claim is qualitative ("identified many of the same
  /// bottlenecks"); this is its quantitative reading.
  static int area_count_in_top(const Analysis& analysis,
                               counters::TmaArea area, int k = 10);

 private:
  const Ensemble* ensemble_;
};

/// Time-weighted measured throughput of a workload dataset (uses any
/// metric's samples; they all share T and W per window).
double measured_throughput(sampling::DatasetView workload);

}  // namespace spire::model
