#include "spire/metric_roofline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "geom/convex_hull.h"
#include "geom/pareto.h"
#include "graph/digraph.h"
#include "graph/shortest_path.h"
#include "util/contract.h"

namespace spire::model {

using geom::kInfinity;
using geom::LinearPiece;
using geom::PiecewiseLinear;
using geom::Point;

namespace fitting {

std::vector<Point> sample_points(std::span<const sampling::Sample> samples) {
  std::vector<Point> points;
  points.reserve(samples.size());
  for (const auto& s : samples) {
    // Non-finite fields (NaN bursts, clipped counters read back as inf)
    // would become NaN points and silently poison the hull / Pareto fits.
    if (!std::isfinite(s.t) || !std::isfinite(s.w) || !std::isfinite(s.m)) {
      continue;
    }
    if (s.t <= 0.0 || s.w < 0.0 || s.m < 0.0) continue;
    points.push_back({s.intensity(), s.throughput()});
  }
  return points;
}

std::optional<PiecewiseLinear> fit_left(const std::vector<Point>& finite_points) {
  std::vector<Point> chain = geom::left_roofline_hull(finite_points);
  if (chain.size() < 2) return std::nullopt;
  // A sample exactly at I = 0 replaces the origin (a vertical segment from
  // the origin is not a function piece; f(0) is simply that sample's P).
  if (chain.size() >= 2 && chain[1].x == 0.0) {
    chain.erase(chain.begin());
    if (chain.size() < 2) return std::nullopt;
  }
  return PiecewiseLinear::from_knots(chain);
}

namespace {

/// Caps the Pareto front size for the O(n^3) segment search. Thinning only
/// restricts segment ENDPOINTS; validity and error are still evaluated
/// against the full front, so the fit stays a true upper bound.
constexpr std::size_t kMaxFrontEndpoints = 96;

struct FrontData {
  std::vector<Point> front;      // full Pareto front, descending I (finite)
  std::vector<std::size_t> ends; // endpoint-eligible indices into front
  bool has_infinite = false;     // a sample with I = infinity exists
  double p_infinite = 0.0;       // max P among infinite-I samples
};

FrontData build_front(const std::vector<Point>& points) {
  FrontData data;
  std::vector<Point> finite;
  finite.reserve(points.size());
  for (const Point& p : points) {
    if (std::isfinite(p.x)) {
      finite.push_back(p);
    } else {
      data.p_infinite = data.has_infinite ? std::max(data.p_infinite, p.y) : p.y;
      data.has_infinite = true;
    }
  }
  data.front = geom::pareto_front_max_xy(finite);

  const std::size_t n = data.front.size();
  if (n <= kMaxFrontEndpoints) {
    data.ends.resize(n);
    for (std::size_t i = 0; i < n; ++i) data.ends[i] = i;
  } else {
    // Uniform thinning, always keeping the extremes.
    for (std::size_t k = 0; k < kMaxFrontEndpoints; ++k) {
      data.ends.push_back(k * (n - 1) / (kMaxFrontEndpoints - 1));
    }
    data.ends.erase(std::unique(data.ends.begin(), data.ends.end()),
                    data.ends.end());
  }
  return data;
}

double line_at(const Point& a, const Point& b, double x) {
  const double t = (x - a.x) / (b.x - a.x);
  return a.y + t * (b.y - a.y);
}

}  // namespace

RightFitDebug fit_right_debug(const std::vector<Point>& points) {
  RightFitDebug out;
  const FrontData data = build_front(points);
  out.front = data.front;
  out.dummy_start = !data.has_infinite;

  const auto& front = data.front;
  const std::size_t n = front.size();

  if (n == 0) {
    // Only infinite-intensity samples: the bound is flat at their best P.
    SPIRE_ASSERT(data.has_infinite, "fit_right: no samples");
    out.start_throughput = data.p_infinite;
    out.function = PiecewiseLinear(
        {{0.0, data.p_infinite, kInfinity, data.p_infinite}});
    return out;
  }

  const Point apex = front.back();  // maximum P (leftmost on the front)
  out.start_throughput = data.has_infinite ? data.p_infinite : front[0].y;

  if (n == 1) {
    // The bound is flat; it must also cover the infinite-intensity samples.
    const double level = data.has_infinite ? std::max(apex.y, data.p_infinite)
                                           : apex.y;
    if (data.has_infinite && level == apex.y) {
      const double d = apex.y - data.p_infinite;
      out.total_error = d * d;
    }
    out.path = {0};
    out.function = PiecewiseLinear({{apex.x, level, kInfinity, level}});
    return out;
  }

  // --- Build the segment graph (paper Fig. 6) ---------------------------
  // m endpoint-eligible front indices; vertex 0 = Start, 1 = End,
  // 2 + a*m + b = "segment from ends[a] to ends[b]" (a <= b along
  // descending I; a == b encodes the horizontal Start segment at ends[a]).
  // Validity and error are always evaluated against the FULL front.
  const auto& ends = data.ends;
  const std::size_t m = ends.size();
  const auto vid = [m](std::size_t a, std::size_t b) {
    return static_cast<graph::VertexId>(2 + a * m + b);
  };
  graph::Digraph g(static_cast<graph::VertexId>(2 + m * m));

  // Precompute validity, squared overestimation, and slope for every
  // endpoint pair (a < b in `ends` order, i.e. I descending).
  std::vector<std::uint8_t> valid(m * m, 0);
  std::vector<double> err(m * m, 0.0);
  std::vector<double> slope(m * m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const Point& pa = front[ends[a]];
      const Point& pb = front[ends[b]];
      bool ok = true;
      double e = 0.0;
      for (std::size_t k = ends[a] + 1; k < ends[b]; ++k) {
        const double d = line_at(pa, pb, front[k].x) - front[k].y;
        if (d < 0.0) {
          ok = false;
          break;
        }
        e += d * d;
      }
      valid[a * m + b] = ok ? 1 : 0;
      err[a * m + b] = e;
      slope[a * m + b] = (pb.y - pa.y) / (pb.x - pa.x);
    }
  }

  // Start edges: a horizontal line through ends[j] covering [I_j, inf)
  // overestimates every front point to its right (and the I = inf samples;
  // a dummy start adds no error). The line must lie on-or-above the
  // infinite-intensity samples too — a start below them would break the
  // upper-bound property.
  bool any_start = false;
  for (std::size_t j = 0; j < m; ++j) {
    if (data.has_infinite && front[ends[j]].y < data.p_infinite) continue;
    double error = 0.0;
    for (std::size_t k = 0; k < ends[j]; ++k) {
      const double d = front[ends[j]].y - front[k].y;
      error += d * d;
    }
    if (data.has_infinite) {
      const double d = front[ends[j]].y - data.p_infinite;
      error += d * d;
    }
    g.add_edge(0, vid(j, j), error);
    any_start = true;
  }
  if (!any_start) {
    // Every finite sample sits below the best infinite-intensity sample:
    // the only valid bound right of the apex is flat at that sample's P.
    out.path = {static_cast<int>(n - 1)};
    out.function =
        PiecewiseLinear({{apex.x, data.p_infinite, kInfinity, data.p_infinite}});
    return out;
  }

  // Interior edges: (a,b) -> (b,c) when bc is steeper than ab (more
  // negative slope: the concave-up rule walking leftward) and bc is valid.
  // The Start pseudo-segment has slope 0, so every valid bc follows it.
  for (std::size_t b = 0; b < m; ++b) {
    for (std::size_t c = b + 1; c < m; ++c) {
      if (!valid[b * m + c]) continue;
      const double s_bc = slope[b * m + c];
      const double e_bc = err[b * m + c];
      if (s_bc <= 0.0) g.add_edge(vid(b, b), vid(b, c), e_bc);
      for (std::size_t a = 0; a < b; ++a) {
        if (valid[a * m + b] && s_bc <= slope[a * m + b]) {
          g.add_edge(vid(a, b), vid(b, c), e_bc);
        }
      }
    }
  }

  // End edges: the horizontal apex cap over [I_apex, I_j], overestimating
  // every front point it passes over INCLUDING the junction sample j (the
  // evaluated fit takes the cap's value at I_j, so the overestimation is
  // real there too; this also makes "cap over a sample" never free).
  for (std::size_t j = 0; j < m; ++j) {
    double error = 0.0;
    for (std::size_t k = ends[j]; k + 1 < n; ++k) {
      const double d = apex.y - front[k].y;
      error += d * d;
    }
    for (std::size_t i = 0; i < j; ++i) {
      if (valid[i * m + j]) g.add_edge(vid(i, j), 1, error);
    }
    g.add_edge(vid(j, j), 1, error);  // from the Start segment at j
  }

  const auto sp = graph::dijkstra(g, 0);
  const auto path = sp.path_to(1);
  // Every Start vertex has an End edge, so a path always exists once any
  // Start edge was added (and the no-Start case returned above).
  SPIRE_INVARIANT(!path.empty(), "fit_right: no Start->End path over ", m,
                  " endpoint candidates");
  out.total_error = sp.dist[1];

  // Decode the vertex path into visited front indices (right to left).
  for (std::size_t k = 1; k + 1 < path.size(); ++k) {
    const auto v = static_cast<std::size_t>(path[k]) - 2;
    const std::size_t b = ends[v % m];
    if (out.path.empty() || out.path.back() != static_cast<int>(b)) {
      out.path.push_back(static_cast<int>(b));
    }
  }

  // Assemble pieces in ascending I.
  std::vector<LinearPiece> pieces;
  const std::size_t last = static_cast<std::size_t>(out.path.back());
  if (last != n - 1) {
    pieces.push_back({apex.x, apex.y, front[last].x, apex.y});  // cap
  }
  for (std::size_t k = out.path.size(); k-- > 1;) {
    const Point& lo = front[static_cast<std::size_t>(out.path[k])];
    const Point& hi = front[static_cast<std::size_t>(out.path[k - 1])];
    pieces.push_back({lo.x, lo.y, hi.x, hi.y});
  }
  const Point& first = front[static_cast<std::size_t>(out.path.front())];
  pieces.push_back({first.x, first.y, kInfinity, first.y});
  out.function = PiecewiseLinear(std::move(pieces));
  return out;
}

PiecewiseLinear fit_right(const std::vector<Point>& points) {
  return fit_right_debug(points).function;
}

}  // namespace fitting

MetricRoofline::MetricRoofline(std::optional<PiecewiseLinear> left,
                               PiecewiseLinear right, Point apex,
                               std::size_t trained_on)
    : left_(std::move(left)),
      right_(std::move(right)),
      apex_(apex),
      trained_on_(trained_on) {}

MetricRoofline MetricRoofline::fit(std::span<const sampling::Sample> samples) {
  const std::vector<Point> points = fitting::sample_points(samples);
  SPIRE_ASSERT(!points.empty(), "MetricRoofline: no usable samples (of ",
               samples.size(), " given)");
  std::vector<Point> finite;
  finite.reserve(points.size());
  for (const Point& p : points) {
    if (std::isfinite(p.x)) finite.push_back(p);
  }

  auto left = fitting::fit_left(finite);
  auto right_debug = fitting::fit_right_debug(points);

  Point apex{0.0, 0.0};
  if (!right_debug.front.empty()) {
    apex = right_debug.front.back();
  } else {
    apex = {kInfinity, right_debug.start_throughput};
  }
  MetricRoofline out(std::move(left), std::move(right_debug.function), apex,
                     points.size());

  // The geometric contracts the whole method rests on (paper Figs. 5/6,
  // Eq. 1) — re-verified after every fit in checked builds. Checking here
  // rather than in the constructor keeps deserialization of hand-written
  // model files permissive; `spire_cli lint` is the gate for those.
#if SPIRE_DCHECK_ENABLED
  if (out.left_.has_value()) {
    SPIRE_DCHECK(out.left_->non_decreasing(),
                 "fit: left region not increasing (Fig. 5)");
    SPIRE_DCHECK(out.left_->continuous(), "fit: left region discontinuous");
    SPIRE_DCHECK(out.left_->domain_max() <= apex.x,
                 "fit: left region overruns the apex: domain max ",
                 out.left_->domain_max(), " > apex I ", apex.x);
    const double left_peak = out.left_->at(out.left_->domain_max());
    SPIRE_DCHECK(std::abs(left_peak - apex.y) <=
                     1e-9 * std::max(1.0, std::abs(apex.y)),
                 "fit: peak discontinuity: left region ends at P=", left_peak,
                 ", apex P=", apex.y);
  }
  SPIRE_DCHECK(out.right_.non_increasing(),
               "fit: right region not decreasing (Fig. 6)");
  for (const Point& p : points) {
    const double bound = out.estimate(p.x);
    SPIRE_DCHECK(bound >= p.y - 1e-6 * std::max(1.0, std::abs(p.y)),
                 "fit: upper-bound violation (Eq. 1): sample (I=", p.x,
                 ", P=", p.y, ") above the fit value ", bound);
  }
#endif
  return out;
}

double MetricRoofline::estimate(double intensity) const {
  SPIRE_ASSERT(!std::isnan(intensity) && intensity >= 0.0,
               "MetricRoofline: bad intensity ", intensity);
  if (left_.has_value() && intensity <= left_->domain_max()) {
    return left_->at(intensity);
  }
  return right_.at(intensity);
}

std::string MetricRoofline::describe() const {
  std::ostringstream os;
  os << "apex: (I=" << apex_.x << ", P=" << apex_.y << "), trained on "
     << trained_on_ << " samples\n";
  if (left_.has_value()) {
    os << "left region:\n" << left_->describe();
  } else {
    os << "left region: (absent)\n";
  }
  os << "right region:\n" << right_.describe();
  return os.str();
}

}  // namespace spire::model
