#include "sampling/dataset.h"

#include <charconv>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace spire::sampling {

using counters::Event;

void Dataset::add(Event metric, const Sample& sample) {
  by_metric_[metric].push_back(sample);
}

const std::vector<Sample>& Dataset::samples(Event metric) const {
  static const std::vector<Sample> kEmpty;
  const auto it = by_metric_.find(metric);
  return it == by_metric_.end() ? kEmpty : it->second;
}

std::vector<Sample>& Dataset::mutable_samples(Event metric) {
  return by_metric_[metric];
}

void Dataset::remove(Event metric) { by_metric_.erase(metric); }

std::vector<Event> Dataset::metrics() const {
  std::vector<Event> out;
  for (const auto& info : counters::event_catalog()) {
    const auto it = by_metric_.find(info.event);
    if (it != by_metric_.end() && !it->second.empty()) out.push_back(info.event);
  }
  return out;
}

std::size_t Dataset::size() const {
  std::size_t n = 0;
  for (const auto& [metric, samples] : by_metric_) n += samples.size();
  return n;
}

void Dataset::merge(const Dataset& other) {
  for (const auto& [metric, samples] : other.by_metric_) {
    auto& mine = by_metric_[metric];
    mine.insert(mine.end(), samples.begin(), samples.end());
  }
}

void Dataset::save_csv(std::ostream& out) const {
  out << "metric,t,w,m\n";
  out.precision(17);
  for (const Event metric : metrics()) {
    const auto name = counters::event_name(metric);
    for (const Sample& s : samples(metric)) {
      out << name << ',' << s.t << ',' << s.w << ',' << s.m << '\n';
    }
  }
}

namespace {

double parse_double(std::string_view field, const char* what,
                    std::string_view line) {
  double value = 0.0;
  const auto* begin = field.data();
  const auto* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string("dataset: bad ") + what + " value '" +
                             std::string(field) + "' in row '" +
                             std::string(line) + "'");
  }
  return value;
}

/// Splits one data row into its four fields without allocating.
struct RowFields {
  std::string_view metric, t, w, m;
};

RowFields split_row(std::string_view line) {
  RowFields f;
  std::string_view* slots[4] = {&f.metric, &f.t, &f.w, &f.m};
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t comma = line.find(',', start);
    if (i < 3) {
      if (comma == std::string_view::npos) {
        throw std::runtime_error("dataset: short row '" + std::string(line) +
                                 "'");
      }
      *slots[i] = line.substr(start, comma - start);
      start = comma + 1;
    } else {
      if (comma != std::string_view::npos) {
        throw std::runtime_error("dataset: long row '" + std::string(line) +
                                 "'");
      }
      *slots[i] = line.substr(start);
    }
  }
  return f;
}

/// Pops the next line off `rest` (handling a trailing '\r' and a final line
/// without '\n'); returns false when the buffer is exhausted.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

}  // namespace

Dataset Dataset::load_csv(std::istream& in) {
  // Slurp the stream once, then parse string_views in place — no per-line
  // stream state, no per-field substr allocations.
  const std::string buffer(std::istreambuf_iterator<char>(in), {});
  return load_csv(std::string_view(buffer));
}

Dataset Dataset::load_csv(std::string_view text) {
  // Hot path for the 27-workload suite and the serving request path
  // (hundreds of thousands of rows per run): every field is parsed in
  // place out of the caller's buffer.
  Dataset out;

  std::string_view rest(text);
  std::string_view line;
  if (!next_line(rest, line)) return out;  // empty stream
  if (line != "metric,t,w,m") {
    throw std::runtime_error("dataset: unexpected header '" +
                             std::string(line) + "'");
  }

  // CSVs are written catalog-major (long runs of one metric), so rows are
  // counted per metric first and each series is reserved exactly once;
  // the name → event lookup below then only runs when the metric changes.
  std::string_view count_rest = rest;
  std::string_view count_line;
  std::unordered_map<std::string_view, std::size_t> rows_per_name;
  while (next_line(count_rest, count_line)) {
    if (count_line.empty()) continue;
    ++rows_per_name[count_line.substr(0, count_line.find(','))];
  }

  std::string_view current_name;
  std::vector<Sample>* series = nullptr;
  std::size_t* remaining = nullptr;
  while (next_line(rest, line)) {
    if (line.empty()) continue;
    const RowFields f = split_row(line);
    if (series == nullptr || f.metric != current_name) {
      const auto metric = counters::event_by_name(f.metric);
      if (!metric) {
        throw std::runtime_error("dataset: unknown metric '" +
                                 std::string(f.metric) + "'");
      }
      current_name = f.metric;
      series = &out.by_metric_[*metric];
      // `remaining` counts this name's rows not yet parsed, so the reserve
      // is exact even when a metric's rows arrive in several runs.
      remaining = &rows_per_name[f.metric];
      series->reserve(series->size() + *remaining);
    }
    series->push_back(Sample{parse_double(f.t, "t", line),
                             parse_double(f.w, "w", line),
                             parse_double(f.m, "m", line)});
    --*remaining;
  }
  return out;
}

}  // namespace spire::sampling
