#include "sampling/dataset.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace spire::sampling {

using counters::Event;

void Dataset::add(Event metric, const Sample& sample) {
  by_metric_[metric].push_back(sample);
}

const std::vector<Sample>& Dataset::samples(Event metric) const {
  static const std::vector<Sample> kEmpty;
  const auto it = by_metric_.find(metric);
  return it == by_metric_.end() ? kEmpty : it->second;
}

std::vector<Sample>& Dataset::mutable_samples(Event metric) {
  return by_metric_[metric];
}

void Dataset::remove(Event metric) { by_metric_.erase(metric); }

std::vector<Event> Dataset::metrics() const {
  std::vector<Event> out;
  for (const auto& info : counters::event_catalog()) {
    const auto it = by_metric_.find(info.event);
    if (it != by_metric_.end() && !it->second.empty()) out.push_back(info.event);
  }
  return out;
}

std::size_t Dataset::size() const {
  std::size_t n = 0;
  for (const auto& [metric, samples] : by_metric_) n += samples.size();
  return n;
}

void Dataset::merge(const Dataset& other) {
  for (const auto& [metric, samples] : other.by_metric_) {
    auto& mine = by_metric_[metric];
    mine.insert(mine.end(), samples.begin(), samples.end());
  }
}

void Dataset::save_csv(std::ostream& out) const {
  out << "metric,t,w,m\n";
  out.precision(17);
  for (const Event metric : metrics()) {
    const auto name = counters::event_name(metric);
    for (const Sample& s : samples(metric)) {
      out << name << ',' << s.t << ',' << s.w << ',' << s.m << '\n';
    }
  }
}

namespace {

double parse_double(const std::string& field, const char* what) {
  double value = 0.0;
  const auto* begin = field.data();
  const auto* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string("dataset: bad ") + what + " value '" +
                             field + "'");
  }
  return value;
}

}  // namespace

Dataset Dataset::load_csv(std::istream& in) {
  Dataset out;
  std::string line;
  if (!std::getline(in, line)) return out;  // empty stream
  if (line != "metric,t,w,m" && line != "metric,t,w,m\r") {
    throw std::runtime_error("dataset: unexpected header '" + line + "'");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::string fields[4];
    std::size_t start = 0;
    for (int i = 0; i < 4; ++i) {
      const std::size_t comma = line.find(',', start);
      if (i < 3) {
        if (comma == std::string::npos) {
          throw std::runtime_error("dataset: short row '" + line + "'");
        }
        fields[i] = line.substr(start, comma - start);
        start = comma + 1;
      } else {
        if (comma != std::string::npos) {
          throw std::runtime_error("dataset: long row '" + line + "'");
        }
        fields[i] = line.substr(start);
      }
    }
    const auto metric = counters::event_by_name(fields[0]);
    if (!metric) {
      throw std::runtime_error("dataset: unknown metric '" + fields[0] + "'");
    }
    out.add(*metric, Sample{parse_double(fields[1], "t"),
                            parse_double(fields[2], "w"),
                            parse_double(fields[3], "m")});
  }
  return out;
}

}  // namespace spire::sampling
