// The SPIRE input element (paper §III-A).
//
// A sample describes one measurement period: its length T, the work W
// completed, and the increase M_x of one performance metric. Throughput
// P = W/T and metric-specific operational intensity I_x = W/M_x are derived.
// In this repository's evaluation W is retired instructions and T is core
// cycles, making P an IPC — exactly the paper's instantiation.
#pragma once

#include <limits>

namespace spire::sampling {

struct Sample {
  double t = 0.0;  // period length (e.g. cycles)
  double w = 0.0;  // work completed (e.g. instructions)
  double m = 0.0;  // metric increase within the period

  /// Average throughput P = W/T. Requires t > 0.
  double throughput() const { return w / t; }

  /// Operational intensity I_x = W/M_x; +infinity when the metric did not
  /// fire at all during the period (M_x = 0).
  double intensity() const {
    if (m <= 0.0) return std::numeric_limits<double>::infinity();
    return w / m;
  }

  friend bool operator==(const Sample&, const Sample&) = default;
};

}  // namespace spire::sampling
