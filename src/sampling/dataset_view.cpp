#include "sampling/dataset_view.h"

namespace spire::sampling {

DatasetView::DatasetView(const Dataset& data)
    : metrics_(data.metrics()),
      by_metric_(counters::kEventCount) {
  for (const counters::Event metric : metrics_) {
    const auto& series = data.samples(metric);
    by_metric_[static_cast<std::size_t>(metric)] =
        std::span<const Sample>(series.data(), series.size());
    size_ += series.size();
  }
}

}  // namespace spire::sampling
