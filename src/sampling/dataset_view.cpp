#include "sampling/dataset_view.h"

#include <stdexcept>

namespace spire::sampling {

DatasetView::DatasetView(const Dataset& data)
    : metrics_(data.metrics()),
      by_metric_(counters::kEventCount) {
  for (const counters::Event metric : metrics_) {
    const auto& series = data.samples(metric);
    by_metric_[static_cast<std::size_t>(metric)] =
        std::span<const Sample>(series.data(), series.size());
    size_ += series.size();
  }
}

DatasetView::DatasetView(
    std::span<const std::pair<counters::Event, std::span<const Sample>>>
        columns)
    : by_metric_(counters::kEventCount) {
  metrics_.reserve(columns.size());
  counters::Event previous{};
  for (const auto& [metric, series] : columns) {
    const auto slot = static_cast<std::size_t>(metric);
    if (slot >= counters::kEventCount) {
      throw std::invalid_argument("dataset view: metric id out of range");
    }
    if (!metrics_.empty() && metric <= previous) {
      throw std::invalid_argument(
          "dataset view: columns must be unique and in catalog order");
    }
    previous = metric;
    if (series.empty()) continue;
    metrics_.push_back(metric);
    by_metric_[slot] = series;
    size_ += series.size();
  }
}

}  // namespace spire::sampling
