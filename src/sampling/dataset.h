// A collection of samples grouped by performance metric, with CSV
// persistence so datasets can be collected once and reused.
//
// Dataset is the MUTABLE BUILDER half of the data model: collection appends
// to it and the quality layer repairs it in place. Read-only consumers
// (training, estimation, validation, lint) take the immutable DatasetView
// (sampling/dataset_view.h) instead, which is cheap to copy and safe to
// share across threads.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "counters/events.h"
#include "sampling/sample.h"

namespace spire::sampling {

class Dataset {
 public:
  /// Appends one sample for a metric.
  void add(counters::Event metric, const Sample& sample);

  /// Samples recorded for a metric (empty vector if none).
  const std::vector<Sample>& samples(counters::Event metric) const;

  /// Mutable access to a metric's series, created empty when absent. Used
  /// by the quality layer (fault injection, repair) to edit series in place.
  std::vector<Sample>& mutable_samples(counters::Event metric);

  /// Removes a metric's series entirely (no-op when absent).
  void remove(counters::Event metric);

  /// Metrics that have at least one sample, in catalog order.
  std::vector<counters::Event> metrics() const;

  /// Total sample count across all metrics.
  std::size_t size() const;

  bool empty() const { return size() == 0; }

  /// Appends all samples of `other` into this dataset.
  void merge(const Dataset& other);

  /// Writes as CSV with header metric,t,w,m.
  void save_csv(std::ostream& out) const;

  /// Parses the save_csv format. Throws std::runtime_error on bad input
  /// (unknown metric names, non-numeric fields).
  static Dataset load_csv(std::istream& in);

  /// Same parse over an in-memory buffer, reading fields in place with no
  /// copy of the text. The serving hot path hands request payloads here
  /// directly; the istream overload slurps and delegates.
  static Dataset load_csv(std::string_view text);

 private:
  std::unordered_map<counters::Event, std::vector<Sample>> by_metric_;
};

}  // namespace spire::sampling
