// Perf-stat-style sample collection with counter multiplexing (paper §IV).
//
// The paper samples 424 events through Linux perf's counter multiplexing:
// every 2-second window yields one sample per metric, with each metric's
// count measured during its group's rotation slices and scaled up by the
// enabled/active time ratio. This collector reproduces that mechanism on
// the simulated core: the window is a cycle budget, groups of metrics
// rotate every `slice_cycles`, and a metric's M_x is its active-slice delta
// scaled by (window time / active time) — including the multiplexing
// estimation noise that real perf data has. The fixed counters (work and
// time) are measured for the full window, exactly like real fixed counters.
#pragma once

#include <cstdint>
#include <vector>

#include "counters/events.h"
#include "sampling/dataset.h"
#include "sim/core.h"

namespace spire::sampling {

struct CollectorConfig {
  /// Cycles per sample window (the "2 seconds" analogue).
  std::uint64_t window_cycles = 50'000;
  /// Cycles per multiplex rotation slice.
  std::uint64_t slice_cycles = 2'000;
  /// Programmable counters available per group (cores typically have <10).
  int group_size = 6;
  /// Modeled cost of reprogramming counters at each group switch: the
  /// driver's interrupt handler blocks the core this long and evicts
  /// `pollute_lines` cache lines. Real overhead is therefore
  /// workload-dependent (the paper measured 1.6% average, 4.6% max); the
  /// stats bench measures it by comparing against an unsampled run.
  std::uint64_t switch_overhead_cycles = 30;
  int pollute_lines = 4;
  /// Metrics to sample; empty selects every cataloged metric event.
  std::vector<counters::Event> metrics;
};

struct CollectionStats {
  std::uint64_t windows = 0;
  std::uint64_t samples = 0;
  std::uint64_t group_switches = 0;
  std::uint64_t measured_cycles = 0;
  std::uint64_t overhead_cycles = 0;
  std::uint64_t instructions = 0;

  /// Fraction of execution time spent reprogramming counters.
  double overhead_fraction() const {
    const double total = static_cast<double>(measured_cycles + overhead_cycles);
    return total > 0.0 ? static_cast<double>(overhead_cycles) / total : 0.0;
  }
};

class SampleCollector {
 public:
  explicit SampleCollector(CollectorConfig config = {});

  /// Runs `core` for up to `max_cycles`, appending one sample per metric per
  /// completed window into `out`. A trailing partial window is emitted when
  /// it covers at least half the window budget. Returns collection stats.
  CollectionStats collect(sim::Core& core, Dataset& out,
                          std::uint64_t max_cycles);

  const CollectorConfig& config() const { return config_; }

 private:
  CollectorConfig config_;
  std::vector<std::vector<counters::Event>> groups_;
};

}  // namespace spire::sampling
