// An immutable, thread-shareable view of a Dataset.
//
// Dataset is the mutable BUILDER: collection appends to it, the quality
// layer repairs it in place. Everything downstream of building — training,
// estimation, validation, linting — only ever reads, and with the parallel
// pipeline those reads happen from many threads at once. DatasetView is the
// read side of that split: const spans over the per-metric series, resolved
// once at construction, cheap to copy, and safe to share across pool
// workers because no code path can mutate through it.
//
// Lifetime: a view is a snapshot of the dataset's series storage. It stays
// valid while the viewed Dataset is alive and structurally unmodified;
// add/remove/merge (or anything reallocating a series vector) invalidates
// outstanding views, exactly like iterators. Take the view after building,
// share it freely, and rebuild it if the dataset changes.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "counters/events.h"
#include "sampling/dataset.h"
#include "sampling/sample.h"

namespace spire::sampling {

class DatasetView {
 public:
  /// An empty view (no metrics, no samples).
  DatasetView() = default;

  /// Snapshots `data`'s series. Implicit on purpose: every read-only
  /// consumer takes a DatasetView, and call sites holding a Dataset keep
  /// working unchanged.
  DatasetView(const Dataset& data);  // NOLINT(google-explicit-constructor)

  /// Builds a view over caller-owned sample storage: one (metric, span)
  /// column per entry, each span pointing into memory the caller keeps
  /// alive for the view's lifetime. This is the zero-copy entry used by
  /// the binary profile path — the spans alias the wire payload directly,
  /// no Dataset is ever materialized. Metrics must be unique and in
  /// catalog order (profile_bin's canonical layout guarantees both);
  /// throws std::invalid_argument otherwise.
  explicit DatasetView(
      std::span<const std::pair<counters::Event, std::span<const Sample>>>
          columns);

  /// Samples recorded for a metric (empty span if none).
  std::span<const Sample> samples(counters::Event metric) const {
    const auto slot = static_cast<std::size_t>(metric);
    return slot < by_metric_.size() ? by_metric_[slot]
                                    : std::span<const Sample>{};
  }

  /// Metrics with at least one sample, in catalog order.
  const std::vector<counters::Event>& metrics() const { return metrics_; }

  /// Total sample count across all metrics.
  std::size_t size() const { return size_; }

  bool empty() const { return size_ == 0; }

 private:
  std::vector<counters::Event> metrics_;             // catalog order
  std::vector<std::span<const Sample>> by_metric_;   // indexed by event id
  std::size_t size_ = 0;
};

}  // namespace spire::sampling
