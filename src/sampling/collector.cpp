#include "sampling/collector.h"

#include <algorithm>
#include <stdexcept>

namespace spire::sampling {

using counters::CounterSet;
using counters::Event;

SampleCollector::SampleCollector(CollectorConfig config)
    : config_(std::move(config)) {
  if (config_.window_cycles == 0 || config_.slice_cycles == 0 ||
      config_.group_size <= 0) {
    throw std::invalid_argument("collector: bad configuration");
  }
  const auto& metrics =
      config_.metrics.empty() ? counters::metric_events() : config_.metrics;
  for (std::size_t i = 0; i < metrics.size();
       i += static_cast<std::size_t>(config_.group_size)) {
    const std::size_t end =
        std::min(i + static_cast<std::size_t>(config_.group_size), metrics.size());
    groups_.emplace_back(metrics.begin() + static_cast<std::ptrdiff_t>(i),
                         metrics.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (groups_.empty()) throw std::invalid_argument("collector: no metrics");
}

CollectionStats SampleCollector::collect(sim::Core& core, Dataset& out,
                                         std::uint64_t max_cycles) {
  CollectionStats stats;
  std::size_t group_index = 0;

  // Per-metric accumulators for the current window.
  struct Accum {
    std::uint64_t delta = 0;
    std::uint64_t active_cycles = 0;
  };
  std::vector<Accum> accum(counters::kEventCount);
  const std::uint64_t inst_before = core.instructions_retired();

  std::uint64_t remaining = max_cycles;
  while (remaining > 0 && !core.done()) {
    // --- one window ---
    for (auto& a : accum) a = Accum{};
    std::uint64_t window_elapsed = 0;
    const CounterSet window_start = core.counters();

    while (window_elapsed < config_.window_cycles && remaining > 0 &&
           !core.done()) {
      const auto& group = groups_[group_index];
      const std::uint64_t budget =
          std::min({config_.slice_cycles, config_.window_cycles - window_elapsed,
                    remaining});
      const CounterSet before = core.counters();
      const std::uint64_t ran = core.run(budget);
      const CounterSet delta = core.counters().since(before);

      for (const Event metric : group) {
        auto& a = accum[static_cast<std::size_t>(metric)];
        a.delta += delta.get(metric);
        a.active_cycles += ran;
      }
      window_elapsed += ran;
      remaining -= ran;
      group_index = (group_index + 1) % groups_.size();
      ++stats.group_switches;
      stats.overhead_cycles += config_.switch_overhead_cycles;
      if (ran == 0) break;  // core completed mid-slice
      // The reprogramming interrupt perturbs the core: its cycles land in
      // the next slice's measurement, exactly like a real perf driver.
      core.interrupt(static_cast<int>(config_.switch_overhead_cycles),
                     config_.pollute_lines);
    }

    if (window_elapsed == 0) break;
    // Partial trailing windows shorter than half the budget are discarded:
    // their scaled estimates are too noisy (the paper's samples all share
    // the full 2 s period).
    if (window_elapsed < config_.window_cycles / 2) {
      stats.measured_cycles += window_elapsed;
      break;
    }

    const CounterSet window_delta = core.counters().since(window_start);
    const auto t = static_cast<double>(window_elapsed);
    const auto w = static_cast<double>(window_delta.get(Event::kInstRetiredAny));

    for (const auto& group : groups_) {
      for (const Event metric : group) {
        const auto& a = accum[static_cast<std::size_t>(metric)];
        if (a.active_cycles == 0) continue;  // group never scheduled
        const double scale = t / static_cast<double>(a.active_cycles);
        out.add(metric,
                Sample{t, w, static_cast<double>(a.delta) * scale});
        ++stats.samples;
      }
    }
    ++stats.windows;
    stats.measured_cycles += window_elapsed;
  }

  stats.instructions = core.instructions_retired() - inst_before;
  return stats;
}

}  // namespace spire::sampling
