#include "lint/model_source.h"

#include <array>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <span>
#include <sstream>
#include <utility>

#include "spire/model_bin_v3.h"
#include "spire/model_io.h"
#include "util/hash.h"

namespace spire::lint {

namespace {

// Mirrors model_io's allocation bound: a lint run over an adversarial file
// must not balloon memory either.
constexpr std::size_t kMaxRegionCorners = 65'536;

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Parses a double leniently: accepts "inf", "-inf", and "nan" (they are
/// exactly what some rules exist to detect). Returns nullopt only for
/// tokens that are not number-shaped at all.
std::optional<double> parse_value(const std::string& token) {
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  if (token == "nan" || token == "-nan") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_count(const std::string& token) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), n);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return n;
}

struct LineReader {
  std::istream& in;
  std::size_t line_no = 0;
  std::string line;

  bool next() {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  }
};

}  // namespace

RawModel parse_raw_model(std::istream& in) {
  RawModel model;
  LineReader reader{in};
  const auto issue = [&model](std::size_t line, std::string message) {
    model.issues.push_back({line, std::move(message)});
  };

  if (!reader.next()) {
    issue(0, "empty file");
    return model;
  }
  model.header = reader.line;
  model.header_line = reader.line_no;
  // "spire-model vN" — parsed leniently; the format-version rule judges N.
  {
    std::istringstream hs(model.header);
    std::string word, ver;
    if (hs >> word >> ver && word == "spire-model" && ver.size() >= 2 &&
        ver[0] == 'v') {
      if (const auto n = parse_count(ver.substr(1));
          n && *n <= std::numeric_limits<int>::max()) {
        std::string rest;
        if (!(hs >> rest)) model.version = static_cast<int>(*n);
      }
    }
  }

  while (reader.next()) {
    // --- metric line ----------------------------------------------------
    auto tokens = tokenize(reader.line);
    if (tokens.empty() || tokens[0] != "metric") {
      issue(reader.line_no,
            "expected a 'metric' line, got '" +
                (tokens.empty() ? std::string() : tokens[0]) + "'");
      // Resynchronization is hopeless without the block structure: stop.
      return model;
    }
    RawMetricModel metric;
    metric.line = reader.line_no;
    if (tokens.size() < 2) {
      issue(reader.line_no, "metric line without a name");
      return model;
    }
    metric.name = tokens[1];
    metric.event = counters::event_by_name(metric.name);

    // trained_on=N and apex=I P, tolerated in glued or split form.
    std::size_t next_token = 2;
    if (next_token < tokens.size() &&
        tokens[next_token].rfind("trained_on=", 0) == 0) {
      if (const auto n = parse_count(tokens[next_token].substr(11))) {
        metric.trained_on = *n;
        metric.trained_on_valid = true;
      } else {
        issue(reader.line_no,
              "bad trained_on count '" + tokens[next_token] + "'");
      }
      ++next_token;
    } else {
      issue(reader.line_no, "missing trained_on field");
    }

    std::vector<double> apex_values;
    for (; next_token < tokens.size(); ++next_token) {
      std::string token = tokens[next_token];
      if (token.rfind("apex=", 0) == 0) token = token.substr(5);
      if (token.empty()) continue;
      if (const auto v = parse_value(token)) {
        apex_values.push_back(*v);
      } else {
        issue(reader.line_no, "unparseable apex token '" + token + "'");
      }
    }
    if (apex_values.size() == 2) {
      metric.apex_x = apex_values[0];
      metric.apex_y = apex_values[1];
    } else {
      issue(reader.line_no, "expected apex intensity and throughput, got " +
                                std::to_string(apex_values.size()) +
                                " value(s)");
    }

    // --- left line ------------------------------------------------------
    if (!reader.next() || tokenize(reader.line).empty() ||
        tokenize(reader.line)[0] != "left") {
      issue(reader.line_no + 1, "missing left region for " + metric.name);
      model.metrics.push_back(std::move(metric));
      return model;
    }
    metric.left_line = reader.line_no;
    {
      const auto left_tokens = tokenize(reader.line);
      std::uint64_t declared = 0;
      if (left_tokens.size() < 2) {
        issue(reader.line_no, "left line without a knot count");
      } else if (const auto n = parse_count(left_tokens[1]);
                 n && *n <= kMaxRegionCorners) {
        declared = *n;
      } else {
        issue(reader.line_no, "bad left knot count '" + left_tokens[1] + "'");
      }
      std::size_t cursor = 2;
      metric.left_complete = true;
      for (std::uint64_t k = 0; k < declared; ++k) {
        if (cursor + 1 >= left_tokens.size()) {
          issue(reader.line_no, "left region truncated: knot " +
                                    std::to_string(k) + " of " +
                                    std::to_string(declared) + " missing");
          metric.left_complete = false;
          break;
        }
        const auto x = parse_value(left_tokens[cursor]);
        const auto y = parse_value(left_tokens[cursor + 1]);
        if (!x || !y) {
          issue(reader.line_no,
                "unparseable left knot '" + left_tokens[cursor] + " " +
                    left_tokens[cursor + 1] + "'");
          metric.left_complete = false;
          break;
        }
        metric.left_knots.push_back({*x, *y});
        cursor += 2;
      }
      if (metric.left_complete && cursor < left_tokens.size()) {
        issue(reader.line_no, "trailing garbage after left region: '" +
                                  left_tokens[cursor] + "'");
      }
    }

    // --- right line -----------------------------------------------------
    if (!reader.next() || tokenize(reader.line).empty() ||
        tokenize(reader.line)[0] != "right") {
      issue(reader.line_no + 1, "missing right region for " + metric.name);
      model.metrics.push_back(std::move(metric));
      return model;
    }
    metric.right_line = reader.line_no;
    {
      const auto right_tokens = tokenize(reader.line);
      std::uint64_t declared = 0;
      if (right_tokens.size() < 2) {
        issue(reader.line_no, "right line without a piece count");
      } else if (const auto n = parse_count(right_tokens[1]);
                 n && *n <= kMaxRegionCorners) {
        declared = *n;
      } else {
        issue(reader.line_no,
              "bad right piece count '" + right_tokens[1] + "'");
      }
      std::size_t cursor = 2;
      metric.right_complete = true;
      for (std::uint64_t k = 0; k < declared; ++k) {
        if (cursor + 3 >= right_tokens.size()) {
          issue(reader.line_no, "right region truncated: piece " +
                                    std::to_string(k) + " of " +
                                    std::to_string(declared) + " missing");
          metric.right_complete = false;
          break;
        }
        geom::LinearPiece piece;
        bool ok = true;
        const std::array<double*, 4> fields = {&piece.x0, &piece.y0,
                                               &piece.x1, &piece.y1};
        for (std::size_t f = 0; f < 4; ++f) {
          if (const auto v = parse_value(right_tokens[cursor + f])) {
            *fields[f] = *v;
          } else {
            issue(reader.line_no, "unparseable right piece value '" +
                                      right_tokens[cursor + f] + "'");
            ok = false;
          }
        }
        if (!ok) {
          metric.right_complete = false;
          break;
        }
        metric.right_pieces.push_back(piece);
        cursor += 4;
      }
      if (metric.right_complete && cursor < right_tokens.size()) {
        issue(reader.line_no, "trailing garbage after right region: '" +
                                  right_tokens[cursor] + "'");
      }
    }

    model.metrics.push_back(std::move(metric));
  }
  return model;
}

namespace {

std::uint32_t load_u32le(const std::string& bytes, std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= std::uint32_t(std::uint8_t(bytes[offset + i])) << (8 * i);
  }
  return v;
}

std::uint64_t load_u64le(const std::string& bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= std::uint64_t(std::uint8_t(bytes[offset + i])) << (8 * i);
  }
  return v;
}

bool f64_matches(const std::string& bytes, std::size_t offset,
                 double expected) {
  return load_u64le(bytes, offset) == std::bit_cast<std::uint64_t>(expected);
}

double load_f64le(const std::string& bytes, std::size_t offset) {
  return std::bit_cast<double>(load_u64le(bytes, offset));
}

std::string fmt17(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Walks the v2 section framing (u32 count, then u32 size + payload per
/// metric) without interpreting payloads, returning the offset one past the
/// last section — the point where a v3 file's flat region begins. nullopt
/// when the framing itself runs off the end; the strict loader will name
/// the defect.
std::optional<std::size_t> v2_body_end(const std::string& bytes) {
  std::size_t cursor = model::kModelBinMagicV3.size();
  if (cursor + 4 > bytes.size()) return std::nullopt;
  const std::uint32_t count = load_u32le(bytes, cursor);
  cursor += 4;
  if (count > model::v3::kMaxMetricSections) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (cursor + 4 > bytes.size()) return std::nullopt;
    const std::uint32_t size = load_u32le(bytes, cursor);
    cursor += 4;
    if (size > bytes.size() - cursor) return std::nullopt;
    cursor += size;
  }
  return cursor;
}

/// Compares a validated flat region against the tables the strict model
/// would compile to (the same flatten walk serve::CompiledModel::compile
/// performs). Returns "" on bit-exact agreement, else a message naming the
/// first divergent metric/table. A mismatch means the artifact's serving
/// tables answer differently than its own v2 body — exactly the drift the
/// v3 writer's by-construction guarantee exists to prevent.
std::string flat_tables_mismatch(const std::string& bytes,
                                 const model::v3::FlatLayout& layout,
                                 const model::Ensemble& ensemble) {
  using model::v3::Section;
  if (layout.metric_count != ensemble.rooflines().size()) {
    return "flat header declares " + std::to_string(layout.metric_count) +
           " metric(s) but the strict model has " +
           std::to_string(ensemble.rooflines().size());
  }
  const auto& ranges = layout.section(Section::kMetricRanges);
  const auto& names = layout.section(Section::kNameIndex);
  const auto& strings = layout.section(Section::kStrings);
  const auto& x0 = layout.section(Section::kX0);
  const auto& y0 = layout.section(Section::kY0);
  const auto& x1 = layout.section(Section::kX1);
  const auto& y1 = layout.section(Section::kY1);
  const auto& slopes = layout.section(Section::kSlopes);
  const auto& intercepts = layout.section(Section::kIntercepts);

  std::size_t piece = 0;  // shared-table cursor, advanced metric by metric
  std::size_t index = 0;  // metric index, ensemble (= file) order
  for (const auto& [metric, roofline] : ensemble.rooflines()) {
    const std::string_view expected_name = counters::event_name(metric);
    const std::uint32_t name_offset = load_u32le(bytes, names.offset + 8 * index);
    const std::uint32_t name_length =
        load_u32le(bytes, names.offset + 8 * index + 4);
    const std::string_view file_name(bytes.data() + strings.offset + name_offset,
                                     name_length);
    if (file_name != expected_name) {
      return "flat metric " + std::to_string(index) + " is named '" +
             std::string(file_name) + "' but the strict model has '" +
             std::string(expected_name) + "'";
    }

    // Replay the flatten walk: left pieces (when present), then right.
    const std::size_t left_begin = piece;
    std::vector<geom::LinearPiece> expected;
    double left_max = 0.0;
    if (roofline.left().has_value()) {
      const auto& pieces = roofline.left()->pieces();
      expected.insert(expected.end(), pieces.begin(), pieces.end());
      left_max = roofline.left()->domain_max();
    }
    const std::size_t left_end = left_begin + expected.size();
    {
      const auto& pieces = roofline.right().pieces();
      expected.insert(expected.end(), pieces.begin(), pieces.end());
    }
    const std::size_t right_end = left_begin + expected.size();

    const std::size_t range_at = ranges.offset + 24 * index;
    const std::array<std::pair<const char*, std::size_t>, 4> fields = {{
        {"left_begin", left_begin},
        {"left_end", left_end},
        {"right_begin", left_end},
        {"right_end", right_end},
    }};
    for (std::size_t f = 0; f < fields.size(); ++f) {
      const std::uint32_t got = load_u32le(bytes, range_at + 4 * f);
      if (got != fields[f].second) {
        return "metric '" + std::string(expected_name) + "': flat range " +
               fields[f].first + "=" + std::to_string(got) +
               " but the strict model compiles to " +
               std::to_string(fields[f].second);
      }
    }
    if (!f64_matches(bytes, range_at + 16, left_max)) {
      return "metric '" + std::string(expected_name) + "': flat left_max=" +
             fmt17(load_f64le(bytes, range_at + 16)) +
             " but the strict model compiles to " + fmt17(left_max);
    }

    for (std::size_t k = 0; k < expected.size(); ++k, ++piece) {
      if (8 * piece + 8 > x0.bytes) {
        return "flat tables hold " + std::to_string(x0.bytes / 8) +
               " piece(s) but the strict model compiles to more";
      }
      const geom::LinearPiece& p = expected[k];
      const double slope = (!std::isfinite(p.x1) || p.x1 == p.x0)
                               ? 0.0
                               : (p.y1 - p.y0) / (p.x1 - p.x0);
      const double intercept =
          (!std::isfinite(p.x1) || p.x1 == p.x0) ? p.y0 : p.y0 - slope * p.x0;
      const std::array<std::pair<const char*, std::pair<std::size_t, double>>,
                       6>
          tables = {{
              {"x0", {x0.offset, p.x0}},
              {"y0", {y0.offset, p.y0}},
              {"x1", {x1.offset, p.x1}},
              {"y1", {y1.offset, p.y1}},
              {"slopes", {slopes.offset, slope}},
              {"intercepts", {intercepts.offset, intercept}},
          }};
      for (const auto& [table, where] : tables) {
        const std::size_t at = where.first + 8 * piece;
        if (!f64_matches(bytes, at, where.second)) {
          return "metric '" + std::string(expected_name) + "': flat " +
                 table + "[" + std::to_string(piece) + "]=" +
                 fmt17(load_f64le(bytes, at)) +
                 " but the strict model compiles to " + fmt17(where.second);
        }
      }
    }
    ++index;
  }
  if (8 * piece != x0.bytes) {
    return "flat tables hold " + std::to_string(x0.bytes / 8) +
           " piece(s) but the strict model compiles to " +
           std::to_string(piece);
  }
  return {};
}

/// v3 lint path. The v2 body and the flat region are validated
/// INDEPENDENTLY — a corrupt flat table must not suppress the body's
/// findings and vice versa — so the body is carved out of the file by its
/// section framing and strict-loaded as a v2 stream, while the flat region
/// goes through the same check_flat_region the mmap reader runs.
RawModel parse_raw_v3_model(const std::string& path) {
  RawModel raw;
  raw.binary = true;
  raw.binary_version = 3;

  std::ifstream in(path, std::ios::binary);
  std::string bytes;
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  if (bytes.empty()) {
    raw.issues.push_back({0, "cannot read " + path});
    return raw;
  }

  std::optional<model::v3::FlatLayout> layout;
  try {
    layout = model::v3::check_flat_region(
        std::as_bytes(std::span(bytes.data(), bytes.size())), 0,
        util::crc32_init());
  } catch (const std::exception& e) {
    raw.flat_issues.push_back(e.what());
  }

  std::optional<model::Ensemble> ensemble;
  try {
    std::string carved(model::kModelBinMagic);
    if (const auto body_end = v2_body_end(bytes)) {
      carved.append(bytes, model::kModelBinMagicV3.size(),
                    *body_end - model::kModelBinMagicV3.size());
      std::istringstream body(carved, std::ios::binary);
      ensemble = model::load_model_bin(body);
    } else {
      // The framing itself is broken — let the strict loader of the whole
      // file produce its section/offset diagnostic.
      ensemble = model::load_model_bin_file(path);
    }
  } catch (const std::exception& e) {
    raw.binary_error = e.what();
  }

  if (ensemble.has_value()) {
    std::stringstream text;
    model::save_model(*ensemble, text);
    std::vector<std::string> flat_issues = std::move(raw.flat_issues);
    raw = parse_raw_model(text);
    raw.binary = true;
    raw.binary_version = 3;
    raw.flat_issues = std::move(flat_issues);
    if (layout.has_value()) {
      raw.flat_mismatch = flat_tables_mismatch(bytes, *layout, *ensemble);
    }
  }
  return raw;
}

}  // namespace

RawModel parse_raw_model_file(const std::string& path) {
  const int version = model::binary_model_file_version(path);
  if (version == 3) return parse_raw_v3_model(path);
  if (version != 0) {
    RawModel raw;
    raw.binary = true;
    raw.binary_version = version;
    try {
      const model::Ensemble ensemble = model::load_model_bin_file(path);
      std::stringstream text;
      model::save_model(ensemble, text);
      raw = parse_raw_model(text);
      raw.binary = true;
      raw.binary_version = version;
    } catch (const std::exception& e) {
      raw.binary_error = e.what();
    }
    return raw;
  }
  std::ifstream in(path);
  if (!in) {
    RawModel model;
    model.issues.push_back({0, "cannot read " + path});
    return model;
  }
  return parse_raw_model(in);
}

}  // namespace spire::lint
