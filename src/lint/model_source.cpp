#include "lint/model_source.h"

#include <array>
#include <charconv>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>

#include "spire/model_io.h"

namespace spire::lint {

namespace {

// Mirrors model_io's allocation bound: a lint run over an adversarial file
// must not balloon memory either.
constexpr std::size_t kMaxRegionCorners = 65'536;

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Parses a double leniently: accepts "inf", "-inf", and "nan" (they are
/// exactly what some rules exist to detect). Returns nullopt only for
/// tokens that are not number-shaped at all.
std::optional<double> parse_value(const std::string& token) {
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  if (token == "nan" || token == "-nan") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> parse_count(const std::string& token) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), n);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return n;
}

struct LineReader {
  std::istream& in;
  std::size_t line_no = 0;
  std::string line;

  bool next() {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  }
};

}  // namespace

RawModel parse_raw_model(std::istream& in) {
  RawModel model;
  LineReader reader{in};
  const auto issue = [&model](std::size_t line, std::string message) {
    model.issues.push_back({line, std::move(message)});
  };

  if (!reader.next()) {
    issue(0, "empty file");
    return model;
  }
  model.header = reader.line;
  model.header_line = reader.line_no;
  // "spire-model vN" — parsed leniently; the format-version rule judges N.
  {
    std::istringstream hs(model.header);
    std::string word, ver;
    if (hs >> word >> ver && word == "spire-model" && ver.size() >= 2 &&
        ver[0] == 'v') {
      if (const auto n = parse_count(ver.substr(1));
          n && *n <= std::numeric_limits<int>::max()) {
        std::string rest;
        if (!(hs >> rest)) model.version = static_cast<int>(*n);
      }
    }
  }

  while (reader.next()) {
    // --- metric line ----------------------------------------------------
    auto tokens = tokenize(reader.line);
    if (tokens.empty() || tokens[0] != "metric") {
      issue(reader.line_no,
            "expected a 'metric' line, got '" +
                (tokens.empty() ? std::string() : tokens[0]) + "'");
      // Resynchronization is hopeless without the block structure: stop.
      return model;
    }
    RawMetricModel metric;
    metric.line = reader.line_no;
    if (tokens.size() < 2) {
      issue(reader.line_no, "metric line without a name");
      return model;
    }
    metric.name = tokens[1];
    metric.event = counters::event_by_name(metric.name);

    // trained_on=N and apex=I P, tolerated in glued or split form.
    std::size_t next_token = 2;
    if (next_token < tokens.size() &&
        tokens[next_token].rfind("trained_on=", 0) == 0) {
      if (const auto n = parse_count(tokens[next_token].substr(11))) {
        metric.trained_on = *n;
        metric.trained_on_valid = true;
      } else {
        issue(reader.line_no,
              "bad trained_on count '" + tokens[next_token] + "'");
      }
      ++next_token;
    } else {
      issue(reader.line_no, "missing trained_on field");
    }

    std::vector<double> apex_values;
    for (; next_token < tokens.size(); ++next_token) {
      std::string token = tokens[next_token];
      if (token.rfind("apex=", 0) == 0) token = token.substr(5);
      if (token.empty()) continue;
      if (const auto v = parse_value(token)) {
        apex_values.push_back(*v);
      } else {
        issue(reader.line_no, "unparseable apex token '" + token + "'");
      }
    }
    if (apex_values.size() == 2) {
      metric.apex_x = apex_values[0];
      metric.apex_y = apex_values[1];
    } else {
      issue(reader.line_no, "expected apex intensity and throughput, got " +
                                std::to_string(apex_values.size()) +
                                " value(s)");
    }

    // --- left line ------------------------------------------------------
    if (!reader.next() || tokenize(reader.line).empty() ||
        tokenize(reader.line)[0] != "left") {
      issue(reader.line_no + 1, "missing left region for " + metric.name);
      model.metrics.push_back(std::move(metric));
      return model;
    }
    metric.left_line = reader.line_no;
    {
      const auto left_tokens = tokenize(reader.line);
      std::uint64_t declared = 0;
      if (left_tokens.size() < 2) {
        issue(reader.line_no, "left line without a knot count");
      } else if (const auto n = parse_count(left_tokens[1]);
                 n && *n <= kMaxRegionCorners) {
        declared = *n;
      } else {
        issue(reader.line_no, "bad left knot count '" + left_tokens[1] + "'");
      }
      std::size_t cursor = 2;
      metric.left_complete = true;
      for (std::uint64_t k = 0; k < declared; ++k) {
        if (cursor + 1 >= left_tokens.size()) {
          issue(reader.line_no, "left region truncated: knot " +
                                    std::to_string(k) + " of " +
                                    std::to_string(declared) + " missing");
          metric.left_complete = false;
          break;
        }
        const auto x = parse_value(left_tokens[cursor]);
        const auto y = parse_value(left_tokens[cursor + 1]);
        if (!x || !y) {
          issue(reader.line_no,
                "unparseable left knot '" + left_tokens[cursor] + " " +
                    left_tokens[cursor + 1] + "'");
          metric.left_complete = false;
          break;
        }
        metric.left_knots.push_back({*x, *y});
        cursor += 2;
      }
      if (metric.left_complete && cursor < left_tokens.size()) {
        issue(reader.line_no, "trailing garbage after left region: '" +
                                  left_tokens[cursor] + "'");
      }
    }

    // --- right line -----------------------------------------------------
    if (!reader.next() || tokenize(reader.line).empty() ||
        tokenize(reader.line)[0] != "right") {
      issue(reader.line_no + 1, "missing right region for " + metric.name);
      model.metrics.push_back(std::move(metric));
      return model;
    }
    metric.right_line = reader.line_no;
    {
      const auto right_tokens = tokenize(reader.line);
      std::uint64_t declared = 0;
      if (right_tokens.size() < 2) {
        issue(reader.line_no, "right line without a piece count");
      } else if (const auto n = parse_count(right_tokens[1]);
                 n && *n <= kMaxRegionCorners) {
        declared = *n;
      } else {
        issue(reader.line_no,
              "bad right piece count '" + right_tokens[1] + "'");
      }
      std::size_t cursor = 2;
      metric.right_complete = true;
      for (std::uint64_t k = 0; k < declared; ++k) {
        if (cursor + 3 >= right_tokens.size()) {
          issue(reader.line_no, "right region truncated: piece " +
                                    std::to_string(k) + " of " +
                                    std::to_string(declared) + " missing");
          metric.right_complete = false;
          break;
        }
        geom::LinearPiece piece;
        bool ok = true;
        const std::array<double*, 4> fields = {&piece.x0, &piece.y0,
                                               &piece.x1, &piece.y1};
        for (std::size_t f = 0; f < 4; ++f) {
          if (const auto v = parse_value(right_tokens[cursor + f])) {
            *fields[f] = *v;
          } else {
            issue(reader.line_no, "unparseable right piece value '" +
                                      right_tokens[cursor + f] + "'");
            ok = false;
          }
        }
        if (!ok) {
          metric.right_complete = false;
          break;
        }
        metric.right_pieces.push_back(piece);
        cursor += 4;
      }
      if (metric.right_complete && cursor < right_tokens.size()) {
        issue(reader.line_no, "trailing garbage after right region: '" +
                                  right_tokens[cursor] + "'");
      }
    }

    model.metrics.push_back(std::move(metric));
  }
  return model;
}

RawModel parse_raw_model_file(const std::string& path) {
  if (model::is_binary_model_file(path)) {
    RawModel raw;
    raw.binary = true;
    try {
      const model::Ensemble ensemble = model::load_model_bin_file(path);
      std::stringstream text;
      model::save_model(ensemble, text);
      raw = parse_raw_model(text);
      raw.binary = true;
    } catch (const std::exception& e) {
      raw.binary_error = e.what();
    }
    return raw;
  }
  std::ifstream in(path);
  if (!in) {
    RawModel model;
    model.issues.push_back({0, "cannot read " + path});
    return model;
  }
  return parse_raw_model(in);
}

}  // namespace spire::lint
