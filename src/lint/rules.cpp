// The built-in lint rules. Each rule enforces one invariant the paper
// assumes (DESIGN.md §8 maps every id to its figure/equation). Rules are
// deliberately independent: a file violating five invariants yields five
// findings, each pointing at its own line.
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "geom/piecewise_linear.h"
#include "lint/lint.h"
#include "spire/model_io.h"

namespace spire::lint {
namespace {

using geom::LinearPiece;
using geom::PiecewiseLinear;
using geom::Point;

double rel_tol(double tolerance, double magnitude) {
  return tolerance * std::max(1.0, std::abs(magnitude));
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void add_finding(LintReport& report, std::string_view id,
                 LintSeverity severity, const std::string& metric,
                 std::size_t line, std::string message) {
  report.findings.push_back(
      {std::string(id), severity, metric, line, std::move(message)});
}

/// Left region as a continuous knot chain, right region as pieces — both
/// re-validated through the REAL geometry type so the bound rule evaluates
/// exactly what estimation would. nullopt when the region is too broken to
/// evaluate (other rules will have flagged why).
std::optional<PiecewiseLinear> strict_left(const RawMetricModel& m) {
  if (m.left_knots.size() < 2 || !m.left_complete) return std::nullopt;
  try {
    return PiecewiseLinear::from_knots(m.left_knots);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<PiecewiseLinear> strict_right(const RawMetricModel& m) {
  if (m.right_pieces.empty() || !m.right_complete) return std::nullopt;
  try {
    return PiecewiseLinear(m.right_pieces);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// --------------------------------------------------------------------------
// File-level rules
// --------------------------------------------------------------------------

/// Structural parse problems, surfaced as findings so one broken line does
/// not hide every other invariant violation in the file.
class ModelStructureRule final : public LintRule {
 public:
  std::string_view id() const override { return "model-structure"; }
  std::string_view summary() const override {
    return "file follows the metric/left/right block structure";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const ParseIssue& issue : context.model.issues) {
      add_finding(report, id(), LintSeverity::kError, "", issue.line,
                  issue.message);
    }
  }
};

/// The format-version header must name a version this build understands
/// (PR 1 hardened the parser; this rule makes version drift visible instead
/// of letting a future writer's file silently mis-parse).
class FormatVersionRule final : public LintRule {
 public:
  std::string_view id() const override { return "format-version"; }
  std::string_view summary() const override {
    return "header declares a supported model format version";
  }
  void check(const LintContext& context, LintReport& report) const override {
    const RawModel& model = context.model;
    if (model.header_line == 0) return;  // empty file: model-structure fired
    if (model.version < 0) {
      add_finding(report, id(), LintSeverity::kError, "", model.header_line,
                  "bad header '" + model.header + "' (expected '" +
                      std::string(spire::model::kModelHeader) + "')");
    } else if (model.version != spire::model::kModelFormatVersion) {
      add_finding(
          report, id(), LintSeverity::kError, "", model.header_line,
          "model format version v" + std::to_string(model.version) +
              " is not supported (this build reads v" +
              std::to_string(spire::model::kModelFormatVersion) + ")");
    }
  }
};

/// A model with no metric blocks estimates nothing.
class EmptyModelRule final : public LintRule {
 public:
  std::string_view id() const override { return "empty-model"; }
  std::string_view summary() const override {
    return "model contains at least one metric roofline";
  }
  void check(const LintContext& context, LintReport& report) const override {
    if (context.model.metrics.empty() && context.model.header_line != 0) {
      add_finding(report, id(), LintSeverity::kError, "",
                  context.model.header_line, "model has no metrics");
    }
  }
};

/// Binary artifacts are linted through the strict loader plus a lossless
/// conversion to the text form (model_source.h). When that load fails there
/// is no lenient line structure for the other rules to point at, so the
/// loader's message — which carries the metric section and byte offset —
/// becomes the file's one typed finding.
class BinaryLoadRule final : public LintRule {
 public:
  std::string_view id() const override { return "binary-load"; }
  std::string_view summary() const override {
    return "binary artifacts pass the strict loader";
  }
  void check(const LintContext& context, LintReport& report) const override {
    const RawModel& model = context.model;
    if (!model.binary || model.binary_error.empty()) return;
    add_finding(report, id(), LintSeverity::kError, "", 0, model.binary_error);
  }
};

/// v3 artifacts append the flattened serving tables the mmap reader points
/// spans into; model_source runs the byte-level validator (the exact checks
/// serve::MappedModel performs at map time) independently of the v2 body,
/// so a corrupt flat region gets its own section/offset finding even when
/// the body still loads — and vice versa.
class FlatStructureRule final : public LintRule {
 public:
  std::string_view id() const override { return "flat-structure"; }
  std::string_view summary() const override {
    return "v3 flat serving tables pass the byte-level validator";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const std::string& message : context.model.flat_issues) {
      add_finding(report, id(), LintSeverity::kError, "", 0, message);
    }
  }
};

/// A v3 file whose flat tables validate but disagree with the tables its
/// own v2 body compiles to would serve different estimates through the
/// mmap path than through the ensemble — the worst kind of drift, because
/// both halves look healthy in isolation.
class FlatMismatchRule final : public LintRule {
 public:
  std::string_view id() const override { return "flat-mismatch"; }
  std::string_view summary() const override {
    return "v3 flat tables equal the tables the strict model compiles to";
  }
  void check(const LintContext& context, LintReport& report) const override {
    if (context.model.flat_mismatch.empty()) return;
    add_finding(report, id(), LintSeverity::kError, "", 0,
                context.model.flat_mismatch);
  }
};

/// Every metric name must exist in the event catalog — the ensemble keys
/// rooflines by Event, so an unknown name can never be estimated against.
class UnknownMetricRule final : public LintRule {
 public:
  std::string_view id() const override { return "unknown-metric"; }
  std::string_view summary() const override {
    return "metric names resolve against the event catalog";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (!m.event.has_value()) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    "metric '" + m.name + "' is not in the event catalog");
      }
    }
  }
};

/// Duplicate blocks would silently shadow each other on load.
class DuplicateMetricRule final : public LintRule {
 public:
  std::string_view id() const override { return "duplicate-metric"; }
  std::string_view summary() const override {
    return "each metric appears at most once";
  }
  void check(const LintContext& context, LintReport& report) const override {
    std::set<std::string> seen;
    for (const RawMetricModel& m : context.model.metrics) {
      if (!seen.insert(m.name).second) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    "metric '" + m.name + "' defined more than once");
      }
    }
  }
};

// --------------------------------------------------------------------------
// Value-domain rules
// --------------------------------------------------------------------------

/// NaN poisons every comparison downstream; infinities are legal in exactly
/// two places (the apex intensity and the final right piece's x1 — the
/// documented horizontal tail).
class NonFiniteValueRule final : public LintRule {
 public:
  std::string_view id() const override { return "non-finite-value"; }
  std::string_view summary() const override {
    return "all values finite except the sanctioned apex/tail infinities";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (std::isnan(m.apex_x) || std::isnan(m.apex_y) ||
          std::isinf(m.apex_y) || m.apex_x == -geom::kInfinity) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    "apex (" + fmt(m.apex_x) + ", " + fmt(m.apex_y) +
                        ") must be finite (intensity may be +inf)");
      }
      for (std::size_t i = 0; i < m.left_knots.size(); ++i) {
        const Point& k = m.left_knots[i];
        if (!std::isfinite(k.x) || !std::isfinite(k.y)) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left knot " + std::to_string(i) + " (" + fmt(k.x) +
                          ", " + fmt(k.y) + ") is not finite");
        }
      }
      for (std::size_t i = 0; i < m.right_pieces.size(); ++i) {
        const LinearPiece& p = m.right_pieces[i];
        const bool tail_inf_ok =
            i + 1 == m.right_pieces.size() && p.x1 == geom::kInfinity;
        if (!std::isfinite(p.x0) || !std::isfinite(p.y0) ||
            !std::isfinite(p.y1) || (!std::isfinite(p.x1) && !tail_inf_ok)) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right piece " + std::to_string(i) + " (" + fmt(p.x0) +
                          ", " + fmt(p.y0) + ") -> (" + fmt(p.x1) + ", " +
                          fmt(p.y1) +
                          ") has a non-finite value outside the horizontal "
                          "tail");
        }
      }
    }
  }
};

/// Intensities and throughputs are ratios of non-negative counters; a
/// negative coordinate means the artifact was corrupted or hand-edited.
class NegativeValueRule final : public LintRule {
 public:
  std::string_view id() const override { return "negative-value"; }
  std::string_view summary() const override {
    return "intensities and throughputs are non-negative";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (m.apex_x < 0.0 || m.apex_y < 0.0) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    "apex (" + fmt(m.apex_x) + ", " + fmt(m.apex_y) +
                        ") has a negative coordinate");
      }
      for (std::size_t i = 0; i < m.left_knots.size(); ++i) {
        const Point& k = m.left_knots[i];
        if (k.x < 0.0 || k.y < 0.0) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left knot " + std::to_string(i) + " (" + fmt(k.x) +
                          ", " + fmt(k.y) + ") has a negative coordinate");
        }
      }
      for (std::size_t i = 0; i < m.right_pieces.size(); ++i) {
        const LinearPiece& p = m.right_pieces[i];
        if (p.x0 < 0.0 || p.y0 < 0.0 || p.x1 < 0.0 || p.y1 < 0.0) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right piece " + std::to_string(i) +
                          " has a negative coordinate");
        }
      }
    }
  }
};

// --------------------------------------------------------------------------
// Segment-structure rules
// --------------------------------------------------------------------------

/// Zero- or negative-width segments make evaluation ill-defined.
class DegenerateSegmentRule final : public LintRule {
 public:
  std::string_view id() const override { return "degenerate-segment"; }
  std::string_view summary() const override {
    return "every segment spans a positive intensity range";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      for (std::size_t i = 1; i < m.left_knots.size(); ++i) {
        if (!(m.left_knots[i].x > m.left_knots[i - 1].x)) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left knots " + std::to_string(i - 1) + " and " +
                          std::to_string(i) + " do not advance: x=" +
                          fmt(m.left_knots[i - 1].x) + " then x=" +
                          fmt(m.left_knots[i].x));
        }
      }
      for (std::size_t i = 0; i < m.right_pieces.size(); ++i) {
        const LinearPiece& p = m.right_pieces[i];
        if (std::isnan(p.x0) || std::isnan(p.x1)) continue;  // non-finite rule
        if (!(p.x0 < p.x1)) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right piece " + std::to_string(i) +
                          " is degenerate: x0=" + fmt(p.x0) +
                          ", x1=" + fmt(p.x1));
        }
        if (p.x1 == geom::kInfinity && p.y1 != p.y0 && !std::isnan(p.y0) &&
            !std::isnan(p.y1)) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "infinite right piece " + std::to_string(i) +
                          " must be horizontal: y0=" + fmt(p.y0) +
                          ", y1=" + fmt(p.y1));
        }
      }
    }
  }
};

/// The right region must tile the intensity axis without gaps or overlaps.
class SegmentGapRule final : public LintRule {
 public:
  std::string_view id() const override { return "segment-gap"; }
  std::string_view summary() const override {
    return "right-region pieces are contiguous in intensity";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      for (std::size_t i = 1; i < m.right_pieces.size(); ++i) {
        const double prev_x1 = m.right_pieces[i - 1].x1;
        const double next_x0 = m.right_pieces[i].x0;
        if (std::isnan(prev_x1) || std::isnan(next_x0)) continue;
        if (prev_x1 != next_x0) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "gap between right pieces " + std::to_string(i - 1) +
                          " and " + std::to_string(i) + ": x1=" +
                          fmt(prev_x1) + " but next x0=" + fmt(next_x0));
        }
      }
    }
  }
};

// --------------------------------------------------------------------------
// Shape rules — the paper's Figs. 5/6 invariants
// --------------------------------------------------------------------------

/// Fig. 5: the left region rises monotonically from the origin to the apex.
class LeftNotIncreasingRule final : public LintRule {
 public:
  std::string_view id() const override { return "left-not-increasing"; }
  std::string_view summary() const override {
    return "left region is increasing (Fig. 5)";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      for (std::size_t i = 1; i < m.left_knots.size(); ++i) {
        const double prev = m.left_knots[i - 1].y;
        const double next = m.left_knots[i].y;
        if (std::isnan(prev) || std::isnan(next)) continue;
        if (next < prev - rel_tol(context.config.shape_tolerance, prev)) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left region drops between knots " +
                          std::to_string(i - 1) + " and " + std::to_string(i) +
                          ": P=" + fmt(prev) + " then P=" + fmt(next));
        }
      }
    }
  }
};

/// Fig. 5: the left region is concave-down — consecutive slopes must not
/// increase. A convex bulge means some training sample pokes above the
/// claimed ceiling.
class LeftNotConcaveRule final : public LintRule {
 public:
  std::string_view id() const override { return "left-not-concave"; }
  std::string_view summary() const override {
    return "left region is concave-down (Fig. 5)";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      for (std::size_t i = 2; i < m.left_knots.size(); ++i) {
        const Point& a = m.left_knots[i - 2];
        const Point& b = m.left_knots[i - 1];
        const Point& c = m.left_knots[i];
        if (!(a.x < b.x && b.x < c.x)) continue;  // degenerate rule's turf
        const double s_ab = geom::slope(a, b);
        const double s_bc = geom::slope(b, c);
        if (std::isnan(s_ab) || std::isnan(s_bc)) continue;
        if (s_bc > s_ab + rel_tol(context.config.shape_tolerance, s_ab)) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left region convex at knot " + std::to_string(i - 1) +
                          ": slope " + fmt(s_ab) + " then " + fmt(s_bc));
        }
      }
    }
  }
};

/// The fitted left region always starts at the origin (or a sample at
/// I = 0). Anything else suggests a truncated or hand-edited region.
class LeftOriginRule final : public LintRule {
 public:
  std::string_view id() const override { return "left-origin"; }
  std::string_view summary() const override {
    return "left region starts at I = 0";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (m.left_knots.empty()) continue;
      const Point& first = m.left_knots.front();
      if (std::isnan(first.x)) continue;
      if (first.x != 0.0) {
        add_finding(report, id(), LintSeverity::kWarning, m.name, m.left_line,
                    "left region starts at I=" + fmt(first.x) +
                        " instead of the origin");
      }
    }
  }
};

/// Fig. 6: right of the apex the bound must never rise — neither within a
/// piece nor across a boundary jump.
class RightNotDecreasingRule final : public LintRule {
 public:
  std::string_view id() const override { return "right-not-decreasing"; }
  std::string_view summary() const override {
    return "right region is non-increasing (Fig. 6)";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      const double tol = context.config.shape_tolerance;
      for (std::size_t i = 0; i < m.right_pieces.size(); ++i) {
        const LinearPiece& p = m.right_pieces[i];
        if (!std::isnan(p.y0) && !std::isnan(p.y1) &&
            p.y1 > p.y0 + rel_tol(tol, p.y0)) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right piece " + std::to_string(i) + " rises: P=" +
                          fmt(p.y0) + " -> P=" + fmt(p.y1));
        }
        if (i > 0) {
          const double prev = m.right_pieces[i - 1].y1;
          if (!std::isnan(prev) && !std::isnan(p.y0) &&
              p.y0 > prev + rel_tol(tol, prev)) {
            add_finding(report, id(), LintSeverity::kError, m.name,
                        m.right_line,
                        "right region jumps up between pieces " +
                            std::to_string(i - 1) + " and " +
                            std::to_string(i) + ": P=" + fmt(prev) +
                            " -> P=" + fmt(p.y0));
          }
        }
      }
    }
  }
};

/// Fig. 6: walking right, slopes must not decrease (concave-up), with one
/// sanctioned exception — the horizontal apex cap as the FIRST piece (the
/// paper's "minor exception to the concave-up rule").
class RightNotConvexRule final : public LintRule {
 public:
  std::string_view id() const override { return "right-not-convex"; }
  std::string_view summary() const override {
    return "right region is concave-up, apex cap excepted (Fig. 6)";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      const auto& pieces = m.right_pieces;
      // Skip the sanctioned leading cap: a horizontal first piece.
      std::size_t start = 0;
      if (!pieces.empty() && pieces[0].y0 == pieces[0].y1) start = 1;
      for (std::size_t i = start + 1; i < pieces.size(); ++i) {
        const LinearPiece& a = pieces[i - 1];
        const LinearPiece& b = pieces[i];
        if (!(a.x0 < a.x1) || !(b.x0 < b.x1)) continue;  // degenerate turf
        const double s_a = a.slope();
        const double s_b = b.slope();
        if (std::isnan(s_a) || std::isnan(s_b)) continue;
        if (s_b < s_a - rel_tol(context.config.shape_tolerance, s_a)) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right region convexity broken at piece " +
                          std::to_string(i) + ": slope " + fmt(s_a) +
                          " then " + fmt(s_b));
        }
      }
    }
  }
};

/// The writer always emits a horizontal tail to I = +inf; a finite domain
/// still evaluates (clamping) but means the artifact was not produced by
/// this toolchain.
class MissingTailRule final : public LintRule {
 public:
  std::string_view id() const override { return "missing-tail"; }
  std::string_view summary() const override {
    return "right region ends in the horizontal tail to I = +inf";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (m.right_pieces.empty()) continue;
      const LinearPiece& last = m.right_pieces.back();
      if (std::isnan(last.x1)) continue;
      if (last.x1 != geom::kInfinity) {
        add_finding(report, id(), LintSeverity::kWarning, m.name,
                    m.right_line,
                    "right region ends at finite I=" + fmt(last.x1) +
                        " (expected a horizontal tail to +inf)");
      }
    }
  }
};

/// The two regions must join continuously at the peak sample: the left
/// region ends at the apex, the right region starts there, and the apex is
/// the global maximum of the whole bound.
class PeakDiscontinuityRule final : public LintRule {
 public:
  std::string_view id() const override { return "peak-discontinuity"; }
  std::string_view summary() const override {
    return "left and right regions join continuously at the apex";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (std::isnan(m.apex_x) || std::isnan(m.apex_y)) continue;
      const double tol = rel_tol(context.config.shape_tolerance, m.apex_y);
      if (!m.left_knots.empty()) {
        const Point& last = m.left_knots.back();
        if (!std::isnan(last.y) && std::abs(last.y - m.apex_y) > tol) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left region ends at P=" + fmt(last.y) +
                          " but the apex is at P=" + fmt(m.apex_y));
        }
        if (!std::isnan(last.x) && std::isfinite(m.apex_x) &&
            last.x > m.apex_x +
                         rel_tol(context.config.shape_tolerance, m.apex_x)) {
          add_finding(report, id(), LintSeverity::kError, m.name, m.left_line,
                      "left region overruns the apex: ends at I=" +
                          fmt(last.x) + ", apex at I=" + fmt(m.apex_x));
        }
      }
      // A right region that is ONE horizontal level at-or-above the apex is
      // legitimate: samples at I = +inf (metric count 0) may run at higher
      // P than any finite-intensity sample, and the fitted bound is then a
      // single flat line covering them (the apex records the best FINITE
      // sample). Any other start must sit exactly at the apex.
      bool flat_right = !m.right_pieces.empty();
      const double flat_level =
          m.right_pieces.empty() ? 0.0 : m.right_pieces.front().y0;
      for (const LinearPiece& p : m.right_pieces) {
        if (std::isnan(p.y0) || p.y0 != flat_level || p.y1 != flat_level) {
          flat_right = false;
          break;
        }
      }
      const bool sanctioned_flat =
          flat_right && flat_level >= m.apex_y - tol;
      if (!m.right_pieces.empty() && !sanctioned_flat) {
        const LinearPiece& first = m.right_pieces.front();
        if (!std::isnan(first.y0) && std::abs(first.y0 - m.apex_y) > tol) {
          add_finding(report, id(), LintSeverity::kError, m.name,
                      m.right_line,
                      "right region starts at P=" + fmt(first.y0) +
                          " but the apex is at P=" + fmt(m.apex_y));
        }
      }
      // The apex must cap every knot and corner (it is the peak finite
      // sample) — except the sanctioned flat-above-apex right region.
      double max_y = m.apex_y;
      for (const Point& k : m.left_knots) {
        if (!std::isnan(k.y)) max_y = std::max(max_y, k.y);
      }
      if (!sanctioned_flat) {
        for (const LinearPiece& p : m.right_pieces) {
          if (!std::isnan(p.y0)) max_y = std::max(max_y, p.y0);
          if (!std::isnan(p.y1)) max_y = std::max(max_y, p.y1);
        }
      }
      if (max_y > m.apex_y + tol) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    "apex P=" + fmt(m.apex_y) +
                        " is below the region maximum P=" + fmt(max_y));
      }
    }
  }
};

// --------------------------------------------------------------------------
// Cross-artifact rules
// --------------------------------------------------------------------------

/// Eq. 1: the model is an UPPER bound — when a training (or regression)
/// dataset is supplied, no usable sample may poke above the fit. Runs only
/// for metrics whose geometry survives strict re-validation; broken shapes
/// are already error findings and cannot be evaluated meaningfully.
class BoundViolationRule final : public LintRule {
 public:
  std::string_view id() const override { return "bound-violation"; }
  std::string_view summary() const override {
    return "no sample in --against exceeds the model bound (Eq. 1)";
  }
  void check(const LintContext& context, LintReport& report) const override {
    if (!context.against.has_value()) return;
    for (const RawMetricModel& m : context.model.metrics) {
      if (!m.event.has_value()) continue;
      const auto left = strict_left(m);
      const auto right = strict_right(m);
      if (!right.has_value()) continue;
      const auto samples = context.against->samples(*m.event);
      std::size_t violations = 0;
      double worst_excess = 0.0;
      double worst_i = 0.0;
      double worst_p = 0.0;
      for (const auto& s : samples) {
        if (s.t <= 0.0 || !std::isfinite(s.t) || !std::isfinite(s.w) ||
            !std::isfinite(s.m) || s.w < 0.0 || s.m < 0.0) {
          continue;  // the quality layer's jurisdiction, not lint's
        }
        const double intensity = s.intensity();
        const double p = s.throughput();
        double bound = 0.0;
        if (left.has_value() && intensity <= left->domain_max()) {
          bound = left->at(intensity);
        } else {
          bound = right->at(intensity);
        }
        const double excess =
            p - bound - rel_tol(context.config.bound_tolerance, p);
        if (excess > 0.0) {
          ++violations;
          if (excess > worst_excess) {
            worst_excess = excess;
            worst_i = intensity;
            worst_p = p;
          }
        }
      }
      if (violations > 0) {
        add_finding(report, id(), LintSeverity::kError, m.name, m.line,
                    std::to_string(violations) +
                        " sample(s) exceed the bound; worst at (I=" +
                        fmt(worst_i) + ", P=" + fmt(worst_p) +
                        "), excess " + fmt(worst_excess));
      }
    }
  }
};

/// A roofline claiming to be trained on fewer samples than it has corners
/// (or on none at all) was not produced by the trainer.
class TrainedOnSuspiciousRule final : public LintRule {
 public:
  std::string_view id() const override { return "trained-on-suspicious"; }
  std::string_view summary() const override {
    return "trained_on counts are plausible";
  }
  void check(const LintContext& context, LintReport& report) const override {
    for (const RawMetricModel& m : context.model.metrics) {
      if (!m.trained_on_valid) continue;  // model-structure fired already
      if (m.trained_on < context.config.min_plausible_trained_on) {
        add_finding(report, id(), LintSeverity::kWarning, m.name, m.line,
                    "trained_on=" + std::to_string(m.trained_on) +
                        " is below the plausible minimum of " +
                        std::to_string(
                            context.config.min_plausible_trained_on));
        continue;
      }
      // Every fitted corner needed a distinct sample; the fitter adds at
      // most one synthetic point per region (the origin knot on the left,
      // the apex cap / tail on the right).
      const std::size_t corners =
          m.left_knots.size() + m.right_pieces.size();
      if (m.right_pieces.size() > m.trained_on + 1 ||
          m.left_knots.size() > m.trained_on + 1) {
        add_finding(report, id(), LintSeverity::kWarning, m.name, m.line,
                    "trained_on=" + std::to_string(m.trained_on) +
                        " cannot produce " + std::to_string(corners) +
                        " region corners");
      }
    }
  }
};

}  // namespace

LintRegistry LintRegistry::builtin() {
  LintRegistry registry;
  registry.add(std::make_unique<ModelStructureRule>());
  registry.add(std::make_unique<FormatVersionRule>());
  registry.add(std::make_unique<EmptyModelRule>());
  registry.add(std::make_unique<BinaryLoadRule>());
  registry.add(std::make_unique<FlatStructureRule>());
  registry.add(std::make_unique<FlatMismatchRule>());
  registry.add(std::make_unique<UnknownMetricRule>());
  registry.add(std::make_unique<DuplicateMetricRule>());
  registry.add(std::make_unique<NonFiniteValueRule>());
  registry.add(std::make_unique<NegativeValueRule>());
  registry.add(std::make_unique<DegenerateSegmentRule>());
  registry.add(std::make_unique<SegmentGapRule>());
  registry.add(std::make_unique<LeftNotIncreasingRule>());
  registry.add(std::make_unique<LeftNotConcaveRule>());
  registry.add(std::make_unique<LeftOriginRule>());
  registry.add(std::make_unique<RightNotDecreasingRule>());
  registry.add(std::make_unique<RightNotConvexRule>());
  registry.add(std::make_unique<MissingTailRule>());
  registry.add(std::make_unique<PeakDiscontinuityRule>());
  registry.add(std::make_unique<BoundViolationRule>());
  registry.add(std::make_unique<TrainedOnSuspiciousRule>());
  return registry;
}

}  // namespace spire::lint
