// Static analysis of serialized SPIRE models and datasets.
//
// SPIRE's correctness is a bundle of geometric invariants the paper states
// pictorially: the left region increasing and concave-down from the origin
// (Fig. 5), the right region decreasing and — apex cap excepted — concave-up
// over Pareto-optimal samples (Fig. 6), the two joined continuously at the
// peak sample, and the assembled piecewise-linear function upper-bounding
// every training sample (Eq. 1). A model artifact that silently violates
// one of those is worse than a crash: estimates stay plausible and wrong.
//
// This subsystem checks the invariants on serialized artifacts WITHOUT
// running estimation: each LintRule inspects the raw parsed model (and
// optionally a training dataset) and reports findings with a stable rule
// id, severity, and the offending line. `spire_cli lint` is the CLI front
// end; tools/lint.sh wires it into the pre-PR gate.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/model_source.h"
#include "sampling/dataset_view.h"

namespace spire::lint {

/// Errors mean the artifact must not be trusted (and fail the CI gate);
/// warnings flag suspicious-but-usable shapes.
enum class LintSeverity : std::uint8_t { kWarning, kError };

std::string_view severity_name(LintSeverity severity);

/// One rule violation at one location.
struct LintFinding {
  std::string rule_id;        // stable kebab-case id, e.g. "left-not-concave"
  LintSeverity severity = LintSeverity::kError;
  std::string metric;         // metric name, or "" for file-level findings
  std::size_t line = 0;       // 1-based line in the model file; 0 = whole file
  std::string message;
};

struct LintReport {
  std::string source;         // path or description of the linted artifact
  std::vector<LintFinding> findings;
  std::size_t metrics_scanned = 0;
  std::size_t rules_run = 0;

  bool clean() const { return findings.empty(); }
  bool has_errors() const;

  /// Findings emitted by one rule (count or presence).
  std::size_t count(std::string_view rule_id) const;

  /// Human-readable rendering, one line per finding:
  ///   <source>:<line>: <severity> [<rule-id>] <metric>: <message>
  std::string describe() const;
};

/// Numeric tolerances and knobs for the geometric rules.
struct LintConfig {
  /// Relative slack for continuity / monotonicity / convexity comparisons
  /// (serialized values went through text round-trips).
  double shape_tolerance = 1e-9;
  /// Relative slack for the upper-bound check against a training set; wider
  /// than shape_tolerance because sample coordinates divide two counters.
  double bound_tolerance = 1e-6;
  /// `trained-on-suspicious` fires when a metric claims fewer training
  /// samples than this.
  std::size_t min_plausible_trained_on = 2;
};

/// Everything a rule may look at. `against` is optional: bound-violation
/// style rules no-op without a dataset. The dataset arrives as an immutable
/// view so a lint pass can share series storage with concurrent pipeline
/// stages.
struct LintContext {
  const RawModel& model;
  std::optional<sampling::DatasetView> against;
  LintConfig config;
};

/// One named, independently testable invariant check.
class LintRule {
 public:
  virtual ~LintRule() = default;

  /// Stable identifier, unique within a registry.
  virtual std::string_view id() const = 0;

  /// One-line description (for `spire_cli lint --rules` and DESIGN.md).
  virtual std::string_view summary() const = 0;

  /// Appends findings for every violation found in `context`.
  virtual void check(const LintContext& context, LintReport& report) const = 0;
};

/// An ordered collection of rules, run as one pass.
class LintRegistry {
 public:
  LintRegistry() = default;
  LintRegistry(LintRegistry&&) = default;
  LintRegistry& operator=(LintRegistry&&) = default;

  /// Throws std::invalid_argument when a rule with the same id exists.
  void add(std::unique_ptr<LintRule> rule);

  const std::vector<std::unique_ptr<LintRule>>& rules() const {
    return rules_;
  }

  /// Rule by id, or nullptr.
  const LintRule* find(std::string_view id) const;

  /// Runs every rule over the context and returns the merged report
  /// (findings ordered by rule registration, then discovery).
  LintReport run(const LintContext& context) const;

  /// All built-in rules, in documentation order.
  static LintRegistry builtin();

 private:
  std::vector<std::unique_ptr<LintRule>> rules_;
};

/// Convenience: parse `path`, run the builtin registry (plus the structural
/// findings from parsing itself), optionally checking samples in `against`.
LintReport lint_model_file(
    const std::string& path,
    std::optional<sampling::DatasetView> against = std::nullopt,
    const LintConfig& config = {});

/// Same, over an already-parsed raw model.
LintReport lint_model(const RawModel& model, std::string source,
                      std::optional<sampling::DatasetView> against = std::nullopt,
                      const LintConfig& config = {});

}  // namespace spire::lint
