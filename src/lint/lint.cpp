#include "lint/lint.h"

#include <algorithm>
#include <sstream>

#include "util/contract.h"

namespace spire::lint {

std::string_view severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "?";
}

bool LintReport::has_errors() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const LintFinding& f) {
                       return f.severity == LintSeverity::kError;
                     });
}

std::size_t LintReport::count(std::string_view rule_id) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [rule_id](const LintFinding& f) {
                      return f.rule_id == rule_id;
                    }));
}

std::string LintReport::describe() const {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << source << ':';
    if (f.line > 0) os << f.line << ':';
    os << ' ' << severity_name(f.severity) << " [" << f.rule_id << ']';
    if (!f.metric.empty()) os << ' ' << f.metric;
    os << ": " << f.message << '\n';
  }
  std::size_t errors = 0;
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) ++errors;
  }
  os << source << ": " << errors << " error(s), "
     << (findings.size() - errors) << " warning(s) over " << metrics_scanned
     << " metric(s), " << rules_run << " rule(s)\n";
  return os.str();
}

void LintRegistry::add(std::unique_ptr<LintRule> rule) {
  SPIRE_ASSERT(rule != nullptr, "lint: null rule");
  SPIRE_ASSERT(find(rule->id()) == nullptr, "lint: duplicate rule id '",
               rule->id(), "'");
  rules_.push_back(std::move(rule));
}

const LintRule* LintRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule->id() == id) return rule.get();
  }
  return nullptr;
}

LintReport LintRegistry::run(const LintContext& context) const {
  LintReport report;
  report.metrics_scanned = context.model.metrics.size();
  report.rules_run = rules_.size();
  for (const auto& rule : rules_) {
    rule->check(context, report);
  }
  return report;
}

LintReport lint_model(const RawModel& model, std::string source,
                      std::optional<sampling::DatasetView> against,
                      const LintConfig& config) {
  const LintContext context{model, against, config};
  LintReport report = LintRegistry::builtin().run(context);
  report.source = std::move(source);
  return report;
}

LintReport lint_model_file(const std::string& path,
                           std::optional<sampling::DatasetView> against,
                           const LintConfig& config) {
  const RawModel model = parse_raw_model_file(path);
  return lint_model(model, path, against, config);
}

}  // namespace spire::lint
