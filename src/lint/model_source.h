// Lenient, lossless parsing of serialized SPIRE model files for static
// analysis. Unlike model::load_model — which constructs real PiecewiseLinear
// objects and therefore MUST reject degenerate or non-finite geometry — this
// parser keeps whatever the file says, however broken, so the lint rules can
// point at the exact line that violates an invariant instead of the loader
// dying on the first one.
//
// Structural problems that prevent reading any further (a region line whose
// token stream ends early, a line that is neither metric/left/right) are
// recorded as ParseIssues; everything value-shaped parses into the raw model
// even when it is NaN, infinite, negative, or out of order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "counters/events.h"
#include "geom/piecewise_linear.h"
#include "geom/point.h"

namespace spire::lint {

/// A structural defect found while parsing (not an invariant violation —
/// those are the rules' jurisdiction). `line` is 1-based.
struct ParseIssue {
  std::size_t line = 0;
  std::string message;
};

/// One metric block ("metric" + "left" + "right" lines), exactly as written.
struct RawMetricModel {
  std::string name;                        // metric name token
  std::optional<counters::Event> event;    // nullopt when not in the catalog
  std::size_t line = 0;                    // "metric" line number
  std::uint64_t trained_on = 0;
  bool trained_on_valid = false;
  double apex_x = 0.0;
  double apex_y = 0.0;

  std::vector<geom::Point> left_knots;     // may be empty ("left 0")
  std::size_t left_line = 0;
  bool left_complete = false;              // all declared knots were present

  std::vector<geom::LinearPiece> right_pieces;
  std::size_t right_line = 0;
  bool right_complete = false;             // all declared pieces were present
};

/// A whole model file, raw.
struct RawModel {
  std::string header;                      // first non-empty line, verbatim
  int version = -1;                        // N from "spire-model vN"; -1 when
                                           // the header is not in that shape
  std::size_t header_line = 0;             // 0 when the file was empty
  std::vector<RawMetricModel> metrics;
  std::vector<ParseIssue> issues;

  /// True when the file was a binary artifact (v2 or v3; `binary_version`
  /// says which). Binary files have no lenient line structure, so they are
  /// linted through the STRICT loader plus a lossless conversion to the
  /// text form: on success the fields above describe the converted text
  /// (line numbers refer to it), on failure `binary_error` carries the
  /// loader's message (with section and byte offset) and everything else
  /// stays empty — the binary-load rule turns it into a finding.
  ///
  /// v3 artifacts additionally carry the flattened serving tables, which
  /// are linted INDEPENDENTLY of the v2 body so one corrupt region never
  /// hides the other's findings: `flat_issues` holds the flat validator's
  /// diagnostics (section + byte offset; the flat-structure rule), and
  /// `flat_mismatch` is non-empty when the flat tables validate but differ
  /// from the tables the strict model would compile to (the flat-mismatch
  /// rule — a drifted table serves different estimates than the ensemble).
  bool binary = false;
  int binary_version = 0;
  std::string binary_error;
  std::vector<std::string> flat_issues;
  std::string flat_mismatch;

  bool structurally_sound() const { return issues.empty(); }
};

/// Never throws on malformed content; every problem lands in
/// RawModel::issues. (I/O errors on a broken stream still surface as an
/// issue, not an exception.)
RawModel parse_raw_model(std::istream& in);

/// File wrapper; an unreadable path becomes a single ParseIssue at line 0.
RawModel parse_raw_model_file(const std::string& path);

}  // namespace spire::lint
