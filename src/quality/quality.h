// Dataset quality control (robustness layer, not in the paper).
//
// Real `perf stat` logs — the data source SPIRE targets — contain dropped
// windows, multiplexing scale-up artifacts, clipped or negative counts, and
// truncated files. The validator classifies those defects into a structured
// QualityReport; sanitize() applies a policy (throw / repair / log) so the
// training and analysis layers never see data they cannot survive.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "counters/events.h"
#include "sampling/dataset.h"
#include "sampling/dataset_view.h"

namespace spire::quality {

/// Every defect class the validator can report. Sample-level kinds point at
/// individual samples; metric-level kinds (missing windows, empty metric)
/// describe a whole series.
enum class DefectKind : std::uint8_t {
  kNonFinite,        // t, w, or m is NaN or infinite
  kNonPositiveTime,  // time weight t <= 0 (zero-length or skewed window)
  kNegativeCount,    // w < 0 or m < 0 (clipped / wrapped counter)
  kDuplicateSample,  // identical (t, w, m) row repeated for one metric
  kScaleUpOutlier,   // implausible multiplexing scale-up: m/t far above the
                     // metric's own median event rate
  kMissingWindows,   // metric covers far fewer windows than the dataset max
  kEmptyMetric,      // metric present but never fired (every m == 0)
  kCount,
};

inline constexpr std::size_t kDefectKindCount =
    static_cast<std::size_t>(DefectKind::kCount);

std::string_view defect_name(DefectKind kind);

/// Errors poison a fit if they reach training; warnings merely degrade it.
enum class Severity : std::uint8_t { kWarning, kError };

Severity defect_severity(DefectKind kind);
std::string_view severity_name(Severity severity);

/// Location of one defective sample (index into the metric's series). For
/// metric-level defects the index is the series length.
struct SampleRef {
  counters::Event metric{};
  std::size_t index = 0;

  friend bool operator==(const SampleRef&, const SampleRef&) = default;
};

/// All occurrences of one defect kind.
struct DefectEntry {
  DefectKind kind{};
  Severity severity = Severity::kWarning;
  std::size_t count = 0;
  std::vector<SampleRef> examples;  // capped at ValidatorConfig::max_examples
};

struct QualityReport {
  std::vector<DefectEntry> defects;  // one entry per kind found, enum order
  std::size_t samples_scanned = 0;
  std::size_t metrics_scanned = 0;

  bool clean() const { return defects.empty(); }
  bool has_errors() const;

  /// Occurrences of one kind (0 when absent).
  std::size_t count(DefectKind kind) const;

  /// Total defective samples/series across all kinds.
  std::size_t total() const;

  /// Entry for a kind, or nullptr when the kind was not observed.
  const DefectEntry* find(DefectKind kind) const;

  /// Human-readable multi-line summary (one line per kind).
  std::string describe() const;
};

struct ValidatorConfig {
  /// m/t beyond the metric's median rate times this factor is implausible.
  double scale_up_rate_factor = 64.0;
  /// A metric with fewer samples than this fraction of the dataset-wide
  /// maximum is reported as missing windows.
  double missing_window_fraction = 0.75;
  /// Defective-sample locations kept per defect kind.
  std::size_t max_examples = 8;
};

/// Scans a dataset for the defect taxonomy above. Pure inspection: it takes
/// an immutable view, never throws on bad data, and never modifies the
/// underlying dataset — safe to run concurrently with other readers.
class DatasetValidator {
 public:
  explicit DatasetValidator(ValidatorConfig config = {});

  QualityReport validate(sampling::DatasetView data) const;

  const ValidatorConfig& config() const { return config_; }

 private:
  ValidatorConfig config_;
};

/// What sanitize() does when the validator finds defects.
enum class Policy {
  kStrict,  // throw QualityError carrying the report
  kRepair,  // drop/clamp/dedupe defective samples, record the surgery
  kWarn,    // keep the data untouched; caller logs the report
};

std::string_view policy_name(Policy policy);
std::optional<Policy> policy_by_name(std::string_view name);

/// Thrown by sanitize() under Policy::kStrict; carries the full report.
class QualityError : public std::runtime_error {
 public:
  QualityError(const std::string& what, QualityReport report);

  const QualityReport& report() const { return *report_; }

 private:
  std::shared_ptr<const QualityReport> report_;  // cheap, nothrow copies
};

struct SanitizeResult {
  sampling::Dataset data;     // the dataset to use downstream
  QualityReport report;       // defects found before any repair
  std::size_t dropped = 0;    // samples removed (non-finite, bad time,
                              // duplicates, corrupt counts, dead metrics)
  std::size_t clamped = 0;    // samples edited in place (negative w zeroed)

  bool repaired() const { return dropped > 0 || clamped > 0; }
};

/// Validates and applies `policy`:
///  * kStrict — throws QualityError when any error-severity defect exists
///    (warnings alone pass through untouched);
///  * kRepair — drops non-finite / non-positive-time / duplicate samples,
///    samples with untrustworthy metric counts (negative m, implausible
///    scale-ups), and all-zero metrics; clamps negative work counts to zero
///    (a fabricated m would move the sample to a wrong intensity, so corrupt
///    counts are dropped rather than guessed);
///  * kWarn — returns the data unchanged alongside the report.
SanitizeResult sanitize(const sampling::Dataset& data, Policy policy,
                        const ValidatorConfig& config = {});

}  // namespace spire::quality
