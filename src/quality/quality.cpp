#include "quality/quality.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <span>
#include <sstream>
#include <unordered_set>

#include "util/contract.h"


namespace spire::quality {

using counters::Event;
using sampling::Dataset;
using sampling::Sample;

std::string_view defect_name(DefectKind kind) {
  switch (kind) {
    case DefectKind::kNonFinite: return "non-finite values";
    case DefectKind::kNonPositiveTime: return "non-positive time weights";
    case DefectKind::kNegativeCount: return "negative counts";
    case DefectKind::kDuplicateSample: return "duplicate samples";
    case DefectKind::kScaleUpOutlier: return "implausible scale-ups";
    case DefectKind::kMissingWindows: return "missing windows";
    case DefectKind::kEmptyMetric: return "empty metrics";
    case DefectKind::kCount: break;
  }
  return "unknown";
}

Severity defect_severity(DefectKind kind) {
  switch (kind) {
    case DefectKind::kNonFinite:
    case DefectKind::kNonPositiveTime:
    case DefectKind::kNegativeCount:
    case DefectKind::kDuplicateSample:
      return Severity::kError;
    default:
      return Severity::kWarning;
  }
}

std::string_view severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

bool QualityReport::has_errors() const {
  return std::any_of(defects.begin(), defects.end(), [](const DefectEntry& e) {
    return e.severity == Severity::kError;
  });
}

std::size_t QualityReport::count(DefectKind kind) const {
  const DefectEntry* entry = find(kind);
  return entry == nullptr ? 0 : entry->count;
}

std::size_t QualityReport::total() const {
  std::size_t n = 0;
  for (const DefectEntry& e : defects) n += e.count;
  return n;
}

const DefectEntry* QualityReport::find(DefectKind kind) const {
  for (const DefectEntry& e : defects) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

std::string QualityReport::describe() const {
  std::ostringstream out;
  out << "quality: " << total() << " defect(s) in " << samples_scanned
      << " samples across " << metrics_scanned << " metrics\n";
  for (const DefectEntry& e : defects) {
    out << "  [" << severity_name(e.severity) << "] " << defect_name(e.kind)
        << ": " << e.count;
    if (!e.examples.empty()) {
      out << " (e.g.";
      for (const SampleRef& ref : e.examples) {
        out << ' ' << counters::event_name(ref.metric) << '[' << ref.index
            << ']';
      }
      out << ')';
    }
    out << '\n';
  }
  return out.str();
}

std::string_view policy_name(Policy policy) {
  switch (policy) {
    case Policy::kStrict: return "strict";
    case Policy::kRepair: return "repair";
    case Policy::kWarn: return "warn";
  }
  return "unknown";
}

std::optional<Policy> policy_by_name(std::string_view name) {
  if (name == "strict") return Policy::kStrict;
  if (name == "repair") return Policy::kRepair;
  if (name == "warn") return Policy::kWarn;
  return std::nullopt;
}

QualityError::QualityError(const std::string& what, QualityReport report)
    : std::runtime_error(what),
      report_(std::make_shared<const QualityReport>(std::move(report))) {}

namespace {

/// Byte-exact key for duplicate detection; unlike operator==, identical NaN
/// payloads compare equal, so corrupt duplicated rows are still caught.
struct SampleKey {
  std::array<char, 3 * sizeof(double)> bytes;

  explicit SampleKey(const Sample& s) {
    std::memcpy(bytes.data(), &s.t, sizeof(double));
    std::memcpy(bytes.data() + sizeof(double), &s.w, sizeof(double));
    std::memcpy(bytes.data() + 2 * sizeof(double), &s.m, sizeof(double));
  }
  friend bool operator==(const SampleKey&, const SampleKey&) = default;
};

struct SampleKeyHash {
  std::size_t operator()(const SampleKey& k) const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : k.bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }
};

bool sample_finite(const Sample& s) {
  return std::isfinite(s.t) && std::isfinite(s.w) && std::isfinite(s.m);
}

/// Median event rate m/t over the metric's firing, structurally sound
/// samples; 0 when fewer than 8 such samples exist (too little evidence to
/// call anything an outlier).
double median_rate(std::span<const Sample> samples) {
  std::vector<double> rates;
  rates.reserve(samples.size());
  for (const Sample& s : samples) {
    if (sample_finite(s) && s.t > 0.0 && s.m > 0.0) rates.push_back(s.m / s.t);
  }
  if (rates.size() < 8) return 0.0;
  const auto mid = rates.begin() + static_cast<std::ptrdiff_t>(rates.size() / 2);
  std::nth_element(rates.begin(), mid, rates.end());
  return *mid;
}

class ReportBuilder {
 public:
  explicit ReportBuilder(std::size_t max_examples)
      : max_examples_(max_examples) {}

  void record(DefectKind kind, Event metric, std::size_t index) {
    DefectEntry& e = entries_[static_cast<std::size_t>(kind)];
    ++e.count;
    if (e.examples.size() < max_examples_) e.examples.push_back({metric, index});
  }

  QualityReport finish(std::size_t samples, std::size_t metrics) && {
    QualityReport report;
    report.samples_scanned = samples;
    report.metrics_scanned = metrics;
    for (std::size_t k = 0; k < kDefectKindCount; ++k) {
      if (entries_[k].count == 0) continue;
      entries_[k].kind = static_cast<DefectKind>(k);
      entries_[k].severity = defect_severity(entries_[k].kind);
      report.defects.push_back(std::move(entries_[k]));
    }
    return report;
  }

 private:
  std::size_t max_examples_;
  std::array<DefectEntry, kDefectKindCount> entries_{};
};

}  // namespace

DatasetValidator::DatasetValidator(ValidatorConfig config) : config_(config) {
  SPIRE_ASSERT(config_.scale_up_rate_factor > 0.0 &&
                   !std::isnan(config_.scale_up_rate_factor),
               "validator: scale_up_rate_factor must be positive, got ",
               config_.scale_up_rate_factor);
  SPIRE_ASSERT(config_.missing_window_fraction >= 0.0 &&
                   config_.missing_window_fraction <= 1.0 &&
                   !std::isnan(config_.missing_window_fraction),
               "validator: missing_window_fraction must be in [0, 1], got ",
               config_.missing_window_fraction);
}

QualityReport DatasetValidator::validate(sampling::DatasetView data) const {
  ReportBuilder builder(config_.max_examples);
  const auto& metrics = data.metrics();

  std::size_t max_count = 0;
  for (const Event metric : metrics) {
    max_count = std::max(max_count, data.samples(metric).size());
  }

  for (const Event metric : metrics) {
    const auto samples = data.samples(metric);
    const double rate_cap = median_rate(samples) * config_.scale_up_rate_factor;
    std::unordered_set<SampleKey, SampleKeyHash> seen;
    bool any_fired = false;

    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      if (s.m != 0.0) any_fired = true;
      if (!seen.insert(SampleKey(s)).second) {
        builder.record(DefectKind::kDuplicateSample, metric, i);
      }
      if (!sample_finite(s)) {
        builder.record(DefectKind::kNonFinite, metric, i);
      } else if (s.t <= 0.0) {
        builder.record(DefectKind::kNonPositiveTime, metric, i);
      } else if (s.w < 0.0 || s.m < 0.0) {
        builder.record(DefectKind::kNegativeCount, metric, i);
      } else if (rate_cap > 0.0 && s.m / s.t > rate_cap) {
        builder.record(DefectKind::kScaleUpOutlier, metric, i);
      }
    }

    if (!samples.empty() && !any_fired) {
      builder.record(DefectKind::kEmptyMetric, metric, samples.size());
    }
    if (static_cast<double>(samples.size()) <
        config_.missing_window_fraction * static_cast<double>(max_count)) {
      builder.record(DefectKind::kMissingWindows, metric, samples.size());
    }
  }
  return std::move(builder).finish(data.size(), metrics.size());
}

SanitizeResult sanitize(const Dataset& data, Policy policy,
                        const ValidatorConfig& config) {
  SanitizeResult result;
  result.report = DatasetValidator(config).validate(data);

  if (policy == Policy::kStrict && result.report.has_errors()) {
    std::ostringstream what;
    what << "dataset failed strict quality validation ("
         << result.report.total() << " defects)\n"
         << result.report.describe();
    throw QualityError(what.str(), result.report);
  }
  if (policy != Policy::kRepair) {
    result.data = data;
    return result;
  }

  for (const Event metric : data.metrics()) {
    const auto& samples = data.samples(metric);
    const bool dead =
        std::none_of(samples.begin(), samples.end(),
                     [](const Sample& s) { return s.m != 0.0; });
    if (dead) {
      result.dropped += samples.size();
      continue;
    }
    const double rate_cap = median_rate(samples) * config.scale_up_rate_factor;
    std::unordered_set<SampleKey, SampleKeyHash> seen;
    for (const Sample& s : samples) {
      if (!sample_finite(s) || s.t <= 0.0) {
        ++result.dropped;
        continue;
      }
      // A corrupt metric count is unrecoverable: any fabricated m moves the
      // sample to a wrong intensity and distorts the upper-bound fit (m = 0
      // would even pin it at infinite intensity). Drop those samples. A
      // negative w, by contrast, clamps harmlessly to zero work: the sample
      // lands at (0, 0), below every roofline.
      if (s.m < 0.0 || (rate_cap > 0.0 && s.m / s.t > rate_cap)) {
        ++result.dropped;
        continue;
      }
      Sample repaired = s;
      bool edited = false;
      if (repaired.w < 0.0) {
        repaired.w = 0.0;
        edited = true;
      }
      // Dedupe on the *repaired* bytes: clamping can collapse two distinct
      // corrupt rows onto the same value, and the repaired dataset must
      // re-validate with no errors.
      if (!seen.insert(SampleKey(repaired)).second) {
        ++result.dropped;
        continue;
      }
      if (edited) ++result.clamped;
      result.data.add(metric, repaired);
    }
  }
  return result;
}

}  // namespace spire::quality
