// Deterministic corruption of clean datasets, mirroring the defect taxonomy
// in quality.h — so every defense in the validator / sanitizer / trainer is
// exercised by construction. Also provides raw-text mutators (bit flips,
// truncation) for fuzzing the CSV and model parsers.
//
// All randomness flows through util::Rng: the same seed and config always
// produce the same corruption, making failures reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "sampling/dataset.h"
#include "util/rng.h"

namespace spire::quality {

/// Per-defect corruption rates. Sample-level rates are probabilities per
/// sample; dead_metric_rate is per metric; truncation_fraction is the
/// fraction of the dataset's tail (in CSV write order) cut off, mimicking a
/// log file whose collection was killed mid-write.
struct FaultConfig {
  double drop_window_rate = 0.0;     // bursts of consecutive windows vanish
  double nan_burst_rate = 0.0;       // bursts of NaN / infinite fields
  double negative_count_rate = 0.0;  // w or m wraps negative
  double time_skew_rate = 0.0;       // t becomes zero or negative
  double duplication_rate = 0.0;     // rows logged twice
  double scale_up_rate = 0.0;        // multiplexing scale-up spikes (m x1024)
  double dead_metric_rate = 0.0;     // a metric's m column reads all-zero
  double truncation_fraction = 0.0;  // trailing fraction of the file lost

  /// Every sample-level rate set to `rate`; dead-metric and truncation off
  /// (those reshape the dataset rather than corrupt samples, so sweeps over
  /// a single corruption rate keep them separate).
  static FaultConfig uniform(double rate);
};

/// How much corruption was actually injected (deterministic per seed).
struct FaultStats {
  std::size_t windows_dropped = 0;
  std::size_t nans_injected = 0;
  std::size_t negatives_injected = 0;
  std::size_t times_skewed = 0;
  std::size_t duplicates_added = 0;
  std::size_t scale_ups_injected = 0;
  std::size_t metrics_deadened = 0;
  std::size_t samples_truncated = 0;

  std::size_t total() const {
    return windows_dropped + nans_injected + negatives_injected +
           times_skewed + duplicates_added + scale_ups_injected +
           metrics_deadened + samples_truncated;
  }
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultConfig config);

  /// Corrupts `data` in place and reports what was injected. Each metric's
  /// corruption stream is seeded from (base seed, corrupt-call epoch,
  /// metric id) via util::derive_seed, so what one metric suffers depends
  /// only on the experiment seed and the metric — not on which other
  /// metrics exist, the order they are visited, or which pool worker runs
  /// an ablation's retraining. Parallelized sweeps therefore reproduce the
  /// exact corruption of the serial run.
  FaultStats corrupt(sampling::Dataset& data);

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 0;  // successive corrupt() calls stay distinct
};

/// Flips `flips` random bits anywhere in `text` (fuzzing helper).
std::string flip_bits(std::string text, util::Rng& rng, int flips);

/// Cuts `text` at a random byte offset (fuzzing helper).
std::string truncate_tail(std::string text, util::Rng& rng);

}  // namespace spire::quality
