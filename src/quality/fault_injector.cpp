#include "quality/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/contract.h"

namespace spire::quality {

using counters::Event;
using sampling::Dataset;
using sampling::Sample;

namespace {

// Real perf defects arrive in runs (a descheduled collector misses several
// windows; a glitching counter returns garbage for a stretch), so drops and
// NaNs are injected as bursts whose start probability keeps the expected
// per-sample corruption rate equal to the configured rate.
constexpr std::size_t kDropBurst = 8;
constexpr std::size_t kNanBurst = 4;
constexpr double kScaleUpFactor = 1024.0;

}  // namespace

FaultConfig FaultConfig::uniform(double rate) {
  FaultConfig config;
  config.drop_window_rate = rate;
  config.nan_burst_rate = rate;
  config.negative_count_rate = rate;
  config.time_skew_rate = rate;
  config.duplication_rate = rate;
  config.scale_up_rate = rate;
  return config;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultConfig config)
    : config_(config), seed_(seed) {
  const auto check_rate = [](double rate, const char* name) {
    SPIRE_ASSERT(rate >= 0.0 && rate <= 1.0 && !std::isnan(rate),
                 "fault injector: ", name, " must be a probability, got ",
                 rate);
  };
  check_rate(config_.drop_window_rate, "drop_window_rate");
  check_rate(config_.nan_burst_rate, "nan_burst_rate");
  check_rate(config_.negative_count_rate, "negative_count_rate");
  check_rate(config_.time_skew_rate, "time_skew_rate");
  check_rate(config_.duplication_rate, "duplication_rate");
  check_rate(config_.scale_up_rate, "scale_up_rate");
  check_rate(config_.dead_metric_rate, "dead_metric_rate");
  check_rate(config_.truncation_fraction, "truncation_fraction");
}

FaultStats FaultInjector::corrupt(Dataset& data) {
  FaultStats stats;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::uint64_t epoch_base = util::derive_seed(seed_, epoch_++);

  // Truncation first: it models the *file* being cut short, so it removes
  // the trailing samples in CSV write order (catalog-major), untouched by
  // the later per-sample corruptions.
  if (config_.truncation_fraction > 0.0) {
    const auto metrics = data.metrics();
    std::size_t cut = static_cast<std::size_t>(
        std::floor(config_.truncation_fraction *
                   static_cast<double>(data.size())));
    for (auto it = metrics.rbegin(); it != metrics.rend() && cut > 0; ++it) {
      auto& samples = data.mutable_samples(*it);
      const std::size_t take = std::min(cut, samples.size());
      samples.resize(samples.size() - take);
      if (samples.empty()) data.remove(*it);
      stats.samples_truncated += take;
      cut -= take;
    }
  }

  for (const Event metric : data.metrics()) {
    auto& samples = data.mutable_samples(metric);
    // An independent stream per (seed, epoch, metric): draws for one metric
    // never shift when other metrics appear, vanish, or run elsewhere.
    util::Rng rng(
        util::derive_seed(epoch_base, static_cast<std::uint64_t>(metric)));

    if (config_.dead_metric_rate > 0.0 && rng.chance(config_.dead_metric_rate)) {
      for (Sample& s : samples) s.m = 0.0;
      ++stats.metrics_deadened;
      continue;  // a dead column has nothing left worth corrupting
    }

    if (config_.drop_window_rate > 0.0) {
      std::vector<Sample> kept;
      kept.reserve(samples.size());
      std::size_t dropping = 0;
      for (const Sample& s : samples) {
        if (dropping == 0 &&
            rng.chance(config_.drop_window_rate / kDropBurst)) {
          dropping = kDropBurst;
        }
        if (dropping > 0) {
          --dropping;
          ++stats.windows_dropped;
        } else {
          kept.push_back(s);
        }
      }
      samples = std::move(kept);
    }

    std::size_t nan_left = 0;
    for (Sample& s : samples) {
      if (nan_left == 0 && config_.nan_burst_rate > 0.0 &&
          rng.chance(config_.nan_burst_rate / kNanBurst)) {
        nan_left = kNanBurst;
      }
      if (nan_left > 0) {
        --nan_left;
        switch (rng.below(3)) {
          case 0: s.m = nan; break;
          case 1: s.w = rng.chance(0.5) ? nan : inf; break;
          default: s.t = nan; break;
        }
        ++stats.nans_injected;
        continue;  // already garbage; further edits would be redundant
      }
      if (rng.chance(config_.negative_count_rate)) {
        if (rng.chance(0.5)) {
          s.m = s.m > 0.0 ? -s.m : -1.0;
        } else {
          s.w = s.w > 0.0 ? -s.w : -1.0;
        }
        ++stats.negatives_injected;
      }
      if (rng.chance(config_.time_skew_rate)) {
        s.t = rng.chance(0.5) ? 0.0 : -s.t;
        ++stats.times_skewed;
      }
      if (rng.chance(config_.scale_up_rate)) {
        s.m = (s.m > 0.0 ? s.m : 1.0) * kScaleUpFactor;
        ++stats.scale_ups_injected;
      }
    }

    if (config_.duplication_rate > 0.0) {
      std::vector<Sample> duplicated;
      duplicated.reserve(samples.size());
      for (const Sample& s : samples) {
        duplicated.push_back(s);
        if (rng.chance(config_.duplication_rate)) {
          duplicated.push_back(s);
          ++stats.duplicates_added;
        }
      }
      samples = std::move(duplicated);
    }
  }
  return stats;
}

std::string flip_bits(std::string text, util::Rng& rng, int flips) {
  if (text.empty()) return text;
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(text.size()));
    text[pos] = static_cast<char>(
        static_cast<unsigned char>(text[pos]) ^ (1u << rng.below(8)));
  }
  return text;
}

std::string truncate_tail(std::string text, util::Rng& rng) {
  if (text.empty()) return text;
  text.resize(static_cast<std::size_t>(rng.below(text.size())));
  return text;
}

}  // namespace spire::quality
