// Hardware performance event catalog.
//
// Event names follow the Skylake-SP events the paper's Table III uses (the
// evaluation machine is a Xeon Gold 6126); abbreviations match the paper
// (FE.n, DB.n, MS.n, DQ.n, BP.n, M, L1.n, L3, LK, CS.n, C1.n, VW). Extra
// events beyond Table III are included because the paper samples 424 metrics
// and the TMA baseline needs issue/retire slot counts.
//
// The simulator updates these counters; SPIRE consumes them opaquely as
// "performance metrics" — nothing in the model depends on their semantics.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace spire::counters {

/// High-level TMA area a metric is most closely associated with
/// (paper Table III's color coding).
enum class TmaArea : std::uint8_t {
  kFrontEnd,
  kBadSpeculation,
  kMemory,
  kCore,
  kRetiring,
  kOther,  // fixed counters and events with no single TMA home
};

/// Human-readable name of a TMA area.
std::string_view tma_area_name(TmaArea area);

/// Every hardware event the simulated core exposes. Order is stable and is
/// the counter index in CounterSet.
enum class Event : std::uint16_t {
  // Fixed counters (work and time; never used as SPIRE metrics).
  kInstRetiredAny,
  kCpuClkUnhaltedThread,

  // Front-end: fetch bubbles seen by retired ops (FE.n).
  kFrontendRetiredLatencyGe2BubblesGe1,
  kFrontendRetiredLatencyGe2BubblesGe2,
  kFrontendRetiredLatencyGe2BubblesGe3,
  // Front-end: decoded stream buffer (DB.n).
  kIdqDsbCycles,
  kIdqDsbUops,
  kFrontendRetiredDsbMiss,
  kIdqAllDsbCyclesAnyUops,
  // Front-end: microcode sequencer (MS.n).
  kIdqMsSwitches,
  kIdqMsDsbCycles,
  // Front-end: delivery shortfall into the IDQ (DQ.n).
  kIdqUopsNotDeliveredCyclesLe1UopDelivCore,
  kIdqUopsNotDeliveredCyclesLe2UopDelivCore,
  kIdqUopsNotDeliveredCyclesLe3UopDelivCore,
  kIdqUopsNotDeliveredCore,
  kIdqUopsNotDeliveredCyclesFeWasOk,
  // Front-end: extras.
  kIdqMiteCycles,
  kIdqMiteUops,
  kIdqMsCycles,
  kIdqMsUops,
  kDsb2MiteSwitchesPenaltyCycles,
  kIcache16bIfdataStall,
  kIcache64bIftagStall,
  kItlbMissesWalkPending,
  kBaclearsAny,
  kLsdUops,
  kLsdCyclesActive,
  kIldStallLcp,

  // Bad speculation (BP.n).
  kBrMispRetiredAllBranches,
  kIntMiscRecoveryCycles,
  kIntMiscRecoveryCyclesAny,
  kBrMispRetiredConditional,
  kMachineClearsCount,
  kMachineClearsMemoryOrdering,

  // Memory (M, L1.n, L3, LK).
  kCycleActivityCyclesMemAny,
  kCycleActivityCyclesL1dMiss,
  kCycleActivityStallsL1dMiss,
  kL1dPendMissPendingCycles,
  kLongestLatCacheMiss,
  kMemInstRetiredLockLoads,
  // Memory: extras.
  kCycleActivityStallsMemAny,
  kCycleActivityStallsL2Miss,
  kCycleActivityStallsL3Miss,
  kMemLoadRetiredL1Hit,
  kMemLoadRetiredL1Miss,
  kMemLoadRetiredL2Hit,
  kMemLoadRetiredL2Miss,
  kMemLoadRetiredL3Hit,
  kMemLoadRetiredL3Miss,
  kMemLoadRetiredFbHit,
  kMemInstRetiredAllLoads,
  kMemInstRetiredAllStores,
  kDtlbLoadMissesWalkPending,
  kL1dReplacement,
  kL2RqstsAllDemandMiss,
  kLongestLatCacheReference,
  kOffcoreRequestsDemandDataRd,

  // Core (CS.n, C1.n, VW).
  kCycleActivityStallsTotal,
  kUopsRetiredStallCycles,
  kUopsIssuedStallCycles,
  kUopsExecutedStallCycles,
  kResourceStallsAny,
  kExeActivityExeBound0Ports,
  kUopsExecutedCoreCyclesGe1,
  kUopsExecutedCyclesGe1UopExec,
  kExeActivity1PortsUtil,
  kUopsIssuedVectorWidthMismatch,
  // Core: extras.
  kExeActivity2PortsUtil,
  kExeActivity3PortsUtil,
  kExeActivity4PortsUtil,
  kExeActivityBoundOnStores,
  kArithDividerActive,
  kResourceStallsSb,
  kRsEventsEmptyCycles,
  kUopsDispatchedPort0,
  kUopsDispatchedPort1,
  kUopsDispatchedPort2,
  kUopsDispatchedPort3,
  kUopsDispatchedPort4,
  kUopsDispatchedPort5,
  kUopsDispatchedPort6,
  kUopsDispatchedPort7,

  // Retiring / pipeline slot accounting (needed by TMA).
  kUopsIssuedAny,
  kUopsRetiredRetireSlots,
  kUopsExecutedThread,
  kBrInstRetiredAllBranches,
  kBrInstRetiredNearTaken,

  kCount,
};

inline constexpr std::size_t kEventCount = static_cast<std::size_t>(Event::kCount);

/// Static description of one event.
struct EventInfo {
  Event event;
  std::string_view name;    // perf-style event name
  std::string_view abbrev;  // paper Table III abbreviation; "" if not in it
  TmaArea area;
  std::string_view description;
};

/// The full catalog, indexed by Event value.
const std::array<EventInfo, kEventCount>& event_catalog();

/// Info for one event.
const EventInfo& event_info(Event e);

/// Perf-style name of an event.
std::string_view event_name(Event e);

/// Looks up an event by its perf-style name.
std::optional<Event> event_by_name(std::string_view name);

/// Looks up an event by its paper abbreviation (e.g. "DB.2").
std::optional<Event> event_by_abbrev(std::string_view abbrev);

/// All events usable as SPIRE performance metrics, i.e. everything except
/// the fixed work/time counters.
const std::vector<Event>& metric_events();

/// Events appearing in the paper's Table III (the abbreviated subset).
const std::vector<Event>& table3_events();

}  // namespace spire::counters
