#include "counters/events.h"

#include <stdexcept>
#include <unordered_map>

namespace spire::counters {

std::string_view tma_area_name(TmaArea area) {
  switch (area) {
    case TmaArea::kFrontEnd: return "Front-End";
    case TmaArea::kBadSpeculation: return "Bad Speculation";
    case TmaArea::kMemory: return "Memory";
    case TmaArea::kCore: return "Core";
    case TmaArea::kRetiring: return "Retiring";
    case TmaArea::kOther: return "Other";
  }
  return "?";
}

namespace {

constexpr std::array<EventInfo, kEventCount> kCatalog = {{
    {Event::kInstRetiredAny, "inst_retired.any", "", TmaArea::kOther,
     "Retired instructions (the work measure W)"},
    {Event::kCpuClkUnhaltedThread, "cpu_clk_unhalted.thread", "",
     TmaArea::kOther, "Unhalted core cycles (the time measure T)"},

    {Event::kFrontendRetiredLatencyGe2BubblesGe1,
     "frontend_retired.latency_ge_2_bubbles_ge_1", "FE.1", TmaArea::kFrontEnd,
     "Retired ops after >=1 fetch bubble lasting >=2 cycles"},
    {Event::kFrontendRetiredLatencyGe2BubblesGe2,
     "frontend_retired.latency_ge_2_bubbles_ge_2", "FE.2", TmaArea::kFrontEnd,
     "Retired ops after >=2 fetch bubbles lasting >=2 cycles"},
    {Event::kFrontendRetiredLatencyGe2BubblesGe3,
     "frontend_retired.latency_ge_2_bubbles_ge_3", "FE.3", TmaArea::kFrontEnd,
     "Retired ops after >=3 fetch bubbles lasting >=2 cycles"},
    {Event::kIdqDsbCycles, "idq.dsb_cycles", "DB.1", TmaArea::kFrontEnd,
     "Cycles the decoded stream buffer delivered uops to the IDQ"},
    {Event::kIdqDsbUops, "idq.dsb_uops", "DB.2", TmaArea::kFrontEnd,
     "Uops delivered from the decoded stream buffer"},
    {Event::kFrontendRetiredDsbMiss, "frontend_retired.dsb_miss", "DB.3",
     TmaArea::kFrontEnd, "Retired ops whose fetch missed the DSB"},
    {Event::kIdqAllDsbCyclesAnyUops, "idq.all_dsb_cycles_any_uops", "DB.4",
     TmaArea::kFrontEnd, "Cycles with any uop delivered by the DSB path"},
    {Event::kIdqMsSwitches, "idq.ms_switches", "MS.1", TmaArea::kFrontEnd,
     "Switches into the microcode sequencer"},
    {Event::kIdqMsDsbCycles, "idq.ms_dsb_cycles", "MS.2", TmaArea::kFrontEnd,
     "Cycles the MS was busy after a DSB-initiated entry"},
    {Event::kIdqUopsNotDeliveredCyclesLe1UopDelivCore,
     "idq_uops_not_delivered.cycles_le_1_uop_deliv.core", "DQ.1",
     TmaArea::kFrontEnd, "Cycles the front-end delivered <=1 uop"},
    {Event::kIdqUopsNotDeliveredCyclesLe2UopDelivCore,
     "idq_uops_not_delivered.cycles_le_2_uop_deliv.core", "DQ.2",
     TmaArea::kFrontEnd, "Cycles the front-end delivered <=2 uops"},
    {Event::kIdqUopsNotDeliveredCyclesLe3UopDelivCore,
     "idq_uops_not_delivered.cycles_le_3_uop_deliv.core", "DQ.3",
     TmaArea::kFrontEnd, "Cycles the front-end delivered <=3 uops"},
    {Event::kIdqUopsNotDeliveredCore, "idq_uops_not_delivered.core", "DQ.C",
     TmaArea::kFrontEnd, "Allocation slots not filled by the front-end"},
    {Event::kIdqUopsNotDeliveredCyclesFeWasOk,
     "idq_uops_not_delivered.cycles_fe_was_ok", "DQ.K", TmaArea::kFrontEnd,
     "Cycles the front-end kept up (delivered 4 or back-end stalled)"},
    {Event::kIdqMiteCycles, "idq.mite_cycles", "", TmaArea::kFrontEnd,
     "Cycles the legacy decode pipeline delivered uops"},
    {Event::kIdqMiteUops, "idq.mite_uops", "", TmaArea::kFrontEnd,
     "Uops delivered by the legacy decode pipeline"},
    {Event::kIdqMsCycles, "idq.ms_cycles", "", TmaArea::kFrontEnd,
     "Cycles the microcode sequencer delivered uops"},
    {Event::kIdqMsUops, "idq.ms_uops", "", TmaArea::kFrontEnd,
     "Uops delivered by the microcode sequencer"},
    {Event::kDsb2MiteSwitchesPenaltyCycles,
     "dsb2mite_switches.penalty_cycles", "", TmaArea::kFrontEnd,
     "Penalty cycles for DSB-to-legacy-decode switches"},
    {Event::kIcache16bIfdataStall, "icache_16b.ifdata_stall", "",
     TmaArea::kFrontEnd, "Cycles fetch stalled on an I-cache data miss"},
    {Event::kIcache64bIftagStall, "icache_64b.iftag_stall", "",
     TmaArea::kFrontEnd, "Cycles fetch stalled on an I-cache tag miss"},
    {Event::kItlbMissesWalkPending, "itlb_misses.walk_pending", "",
     TmaArea::kFrontEnd, "Cycles an ITLB page walk was in progress"},
    {Event::kBaclearsAny, "baclears.any", "", TmaArea::kFrontEnd,
     "Front-end re-steers from branch address calculation"},
    {Event::kLsdUops, "lsd.uops", "", TmaArea::kFrontEnd,
     "Uops delivered by the loop stream detector"},
    {Event::kLsdCyclesActive, "lsd.cycles_active", "", TmaArea::kFrontEnd,
     "Cycles the loop stream detector was delivering"},
    {Event::kIldStallLcp, "ild_stall.lcp", "", TmaArea::kFrontEnd,
     "Stall cycles from length-changing prefixes"},

    {Event::kBrMispRetiredAllBranches, "br_misp_retired.all_branches", "BP.1",
     TmaArea::kBadSpeculation, "Retired mispredicted branches"},
    {Event::kIntMiscRecoveryCycles, "int_misc.recovery_cycles", "BP.2",
     TmaArea::kBadSpeculation, "Recovery cycles after any machine clear"},
    {Event::kIntMiscRecoveryCyclesAny, "int_misc.recovery_cycles_any", "BP.3",
     TmaArea::kBadSpeculation, "Recovery cycles, counted for any thread"},
    {Event::kBrMispRetiredConditional, "br_misp_retired.conditional", "",
     TmaArea::kBadSpeculation, "Retired mispredicted conditional branches"},
    {Event::kMachineClearsCount, "machine_clears.count", "",
     TmaArea::kBadSpeculation, "Machine clears of any kind"},
    {Event::kMachineClearsMemoryOrdering, "machine_clears.memory_ordering", "",
     TmaArea::kBadSpeculation, "Machine clears from memory ordering"},

    {Event::kCycleActivityCyclesMemAny, "cycle_activity.cycles_mem_any", "M",
     TmaArea::kMemory, "Cycles with an in-flight memory load"},
    {Event::kCycleActivityCyclesL1dMiss, "cycle_activity.cycles_l1d_miss",
     "L1.1", TmaArea::kMemory, "Cycles with an outstanding L1D miss"},
    {Event::kCycleActivityStallsL1dMiss, "cycle_activity.stalls_l1d_miss",
     "L1.2", TmaArea::kMemory,
     "Execution stall cycles with an outstanding L1D miss"},
    {Event::kL1dPendMissPendingCycles, "l1d_pend_miss.pending_cycles", "L1.3",
     TmaArea::kMemory, "Cycles with at least one L1D miss pending"},
    {Event::kLongestLatCacheMiss, "longest_lat_cache.miss", "L3",
     TmaArea::kMemory, "Demand misses in the last-level cache"},
    {Event::kMemInstRetiredLockLoads, "mem_inst_retired.lock_loads", "LK",
     TmaArea::kMemory, "Retired locked load instructions"},
    {Event::kCycleActivityStallsMemAny, "cycle_activity.stalls_mem_any", "",
     TmaArea::kMemory, "Execution stall cycles with an in-flight load"},
    {Event::kCycleActivityStallsL2Miss, "cycle_activity.stalls_l2_miss", "",
     TmaArea::kMemory, "Execution stall cycles with an outstanding L2 miss"},
    {Event::kCycleActivityStallsL3Miss, "cycle_activity.stalls_l3_miss", "",
     TmaArea::kMemory, "Execution stall cycles with an outstanding L3 miss"},
    {Event::kMemLoadRetiredL1Hit, "mem_load_retired.l1_hit", "",
     TmaArea::kMemory, "Retired loads that hit the L1D"},
    {Event::kMemLoadRetiredL1Miss, "mem_load_retired.l1_miss", "",
     TmaArea::kMemory, "Retired loads that missed the L1D"},
    {Event::kMemLoadRetiredL2Hit, "mem_load_retired.l2_hit", "",
     TmaArea::kMemory, "Retired loads that hit the L2"},
    {Event::kMemLoadRetiredL2Miss, "mem_load_retired.l2_miss", "",
     TmaArea::kMemory, "Retired loads that missed the L2"},
    {Event::kMemLoadRetiredL3Hit, "mem_load_retired.l3_hit", "",
     TmaArea::kMemory, "Retired loads that hit the L3"},
    {Event::kMemLoadRetiredL3Miss, "mem_load_retired.l3_miss", "",
     TmaArea::kMemory, "Retired loads that missed the L3"},
    {Event::kMemLoadRetiredFbHit, "mem_load_retired.fb_hit", "",
     TmaArea::kMemory, "Retired loads that hit a pending-miss fill buffer"},
    {Event::kMemInstRetiredAllLoads, "mem_inst_retired.all_loads", "",
     TmaArea::kMemory, "Retired load instructions"},
    {Event::kMemInstRetiredAllStores, "mem_inst_retired.all_stores", "",
     TmaArea::kMemory, "Retired store instructions"},
    {Event::kDtlbLoadMissesWalkPending, "dtlb_load_misses.walk_pending", "",
     TmaArea::kMemory, "Cycles a DTLB load page walk was in progress"},
    {Event::kL1dReplacement, "l1d.replacement", "", TmaArea::kMemory,
     "L1D cache lines replaced"},
    {Event::kL2RqstsAllDemandMiss, "l2_rqsts.all_demand_miss", "",
     TmaArea::kMemory, "Demand requests that missed the L2"},
    {Event::kLongestLatCacheReference, "longest_lat_cache.reference", "",
     TmaArea::kMemory, "Demand references to the last-level cache"},
    {Event::kOffcoreRequestsDemandDataRd,
     "offcore_requests.demand_data_rd", "", TmaArea::kMemory,
     "Demand data reads sent off-core"},

    {Event::kCycleActivityStallsTotal, "cycle_activity.stalls_total", "CS.1",
     TmaArea::kCore, "Cycles with no uop executed"},
    {Event::kUopsRetiredStallCycles, "uops_retired.stall_cycles", "CS.2",
     TmaArea::kCore, "Cycles with no uop retired"},
    {Event::kUopsIssuedStallCycles, "uops_issued.stall_cycles", "CS.3",
     TmaArea::kCore, "Cycles with no uop issued"},
    {Event::kUopsExecutedStallCycles, "uops_executed.stall_cycles", "CS.4",
     TmaArea::kCore, "Cycles with no uop dispatched to a port"},
    {Event::kResourceStallsAny, "resource_stalls.any", "CS.5", TmaArea::kCore,
     "Allocation stalls from any back-end resource"},
    {Event::kExeActivityExeBound0Ports, "exe_activity.exe_bound_0_ports",
     "CS.6", TmaArea::kCore,
     "Cycles with no port utilized while uops were ready"},
    {Event::kUopsExecutedCoreCyclesGe1, "uops_executed.core_cycles_ge_1",
     "C1.1", TmaArea::kCore, "Cycles the core executed >=1 uop"},
    {Event::kUopsExecutedCyclesGe1UopExec,
     "uops_executed.cycles_ge_1_uop_exec", "C1.2", TmaArea::kCore,
     "Cycles this thread executed >=1 uop"},
    {Event::kExeActivity1PortsUtil, "exe_activity.1_ports_util", "C1.3",
     TmaArea::kCore, "Cycles exactly 1 port was utilized"},
    {Event::kUopsIssuedVectorWidthMismatch,
     "uops_issued.vector_width_mismatch", "VW", TmaArea::kCore,
     "Uops issued with a SIMD vector width transition penalty"},
    {Event::kExeActivity2PortsUtil, "exe_activity.2_ports_util", "",
     TmaArea::kCore, "Cycles exactly 2 ports were utilized"},
    {Event::kExeActivity3PortsUtil, "exe_activity.3_ports_util", "",
     TmaArea::kCore, "Cycles exactly 3 ports were utilized"},
    {Event::kExeActivity4PortsUtil, "exe_activity.4_ports_util", "",
     TmaArea::kCore, "Cycles 4 or more ports were utilized"},
    {Event::kExeActivityBoundOnStores, "exe_activity.bound_on_stores", "",
     TmaArea::kCore, "Cycles stalled with the store buffer full"},
    {Event::kArithDividerActive, "arith.divider_active", "", TmaArea::kCore,
     "Cycles the divide unit was busy"},
    {Event::kResourceStallsSb, "resource_stalls.sb", "", TmaArea::kCore,
     "Allocation stalls from a full store buffer"},
    {Event::kRsEventsEmptyCycles, "rs_events.empty_cycles", "",
     TmaArea::kCore, "Cycles the reservation station was empty"},
    {Event::kUopsDispatchedPort0, "uops_dispatched_port.port_0", "",
     TmaArea::kCore, "Uops dispatched to port 0 (ALU/vector/div)"},
    {Event::kUopsDispatchedPort1, "uops_dispatched_port.port_1", "",
     TmaArea::kCore, "Uops dispatched to port 1 (ALU/vector)"},
    {Event::kUopsDispatchedPort2, "uops_dispatched_port.port_2", "",
     TmaArea::kCore, "Uops dispatched to port 2 (load)"},
    {Event::kUopsDispatchedPort3, "uops_dispatched_port.port_3", "",
     TmaArea::kCore, "Uops dispatched to port 3 (load)"},
    {Event::kUopsDispatchedPort4, "uops_dispatched_port.port_4", "",
     TmaArea::kCore, "Uops dispatched to port 4 (store data)"},
    {Event::kUopsDispatchedPort5, "uops_dispatched_port.port_5", "",
     TmaArea::kCore, "Uops dispatched to port 5 (ALU/shuffle)"},
    {Event::kUopsDispatchedPort6, "uops_dispatched_port.port_6", "",
     TmaArea::kCore, "Uops dispatched to port 6 (ALU/branch)"},
    {Event::kUopsDispatchedPort7, "uops_dispatched_port.port_7", "",
     TmaArea::kCore, "Uops dispatched to port 7 (store address)"},

    {Event::kUopsIssuedAny, "uops_issued.any", "", TmaArea::kRetiring,
     "Uops issued by the rename/allocate stage"},
    {Event::kUopsRetiredRetireSlots, "uops_retired.retire_slots", "",
     TmaArea::kRetiring, "Retirement slots used"},
    {Event::kUopsExecutedThread, "uops_executed.thread", "",
     TmaArea::kRetiring, "Uops executed by this thread"},
    {Event::kBrInstRetiredAllBranches, "br_inst_retired.all_branches", "",
     TmaArea::kRetiring, "Retired branch instructions"},
    {Event::kBrInstRetiredNearTaken, "br_inst_retired.near_taken", "",
     TmaArea::kRetiring, "Retired taken branches"},
}};

}  // namespace

const std::array<EventInfo, kEventCount>& event_catalog() {
  // Cross-check that the table is ordered by Event value (compile-time size
  // is already enforced by the array type).
  static const bool checked = [] {
    for (std::size_t i = 0; i < kEventCount; ++i) {
      if (static_cast<std::size_t>(kCatalog[i].event) != i) {
        throw std::logic_error("event catalog out of order at index " +
                               std::to_string(i));
      }
    }
    return true;
  }();
  (void)checked;
  return kCatalog;
}

const EventInfo& event_info(Event e) {
  const auto idx = static_cast<std::size_t>(e);
  if (idx >= kEventCount) throw std::out_of_range("event_info: bad event");
  return event_catalog()[idx];
}

std::string_view event_name(Event e) { return event_info(e).name; }

namespace {

const std::unordered_map<std::string_view, Event>& name_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Event>();
    for (const auto& info : event_catalog()) m->emplace(info.name, info.event);
    return m;
  }();
  return *map;
}

const std::unordered_map<std::string_view, Event>& abbrev_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Event>();
    for (const auto& info : event_catalog()) {
      if (!info.abbrev.empty()) m->emplace(info.abbrev, info.event);
    }
    return m;
  }();
  return *map;
}

}  // namespace

std::optional<Event> event_by_name(std::string_view name) {
  const auto it = name_index().find(name);
  if (it == name_index().end()) return std::nullopt;
  return it->second;
}

std::optional<Event> event_by_abbrev(std::string_view abbrev) {
  const auto it = abbrev_index().find(abbrev);
  if (it == abbrev_index().end()) return std::nullopt;
  return it->second;
}

const std::vector<Event>& metric_events() {
  static const auto* events = [] {
    auto* v = new std::vector<Event>();
    for (const auto& info : event_catalog()) {
      if (info.event == Event::kInstRetiredAny ||
          info.event == Event::kCpuClkUnhaltedThread) {
        continue;
      }
      v->push_back(info.event);
    }
    return v;
  }();
  return *events;
}

const std::vector<Event>& table3_events() {
  static const auto* events = [] {
    auto* v = new std::vector<Event>();
    for (const auto& info : event_catalog()) {
      if (!info.abbrev.empty()) v->push_back(info.event);
    }
    return v;
  }();
  return *events;
}

}  // namespace spire::counters
