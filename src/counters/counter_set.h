// The counter register file the simulated core writes into, plus snapshot
// arithmetic for windowed sampling (perf-stat style).
#pragma once

#include <array>
#include <cstdint>

#include "counters/events.h"

namespace spire::counters {

/// All hardware counters of one core. The simulator increments these every
/// cycle; the sampling layer takes snapshots and differences them.
class CounterSet {
 public:
  CounterSet() { counts_.fill(0); }

  /// Adds `delta` to an event's counter.
  void add(Event e, std::uint64_t delta = 1) {
    counts_[static_cast<std::size_t>(e)] += delta;
  }

  std::uint64_t get(Event e) const {
    return counts_[static_cast<std::size_t>(e)];
  }

  void reset() { counts_.fill(0); }

  /// Element-wise difference (this - earlier). Counters are monotonic, so
  /// callers pass the older snapshot; underflow indicates a logic error and
  /// throws std::logic_error.
  CounterSet since(const CounterSet& earlier) const;

  const std::array<std::uint64_t, kEventCount>& raw() const { return counts_; }

 private:
  std::array<std::uint64_t, kEventCount> counts_;
};

}  // namespace spire::counters
