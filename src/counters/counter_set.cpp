#include "counters/counter_set.h"

#include <stdexcept>
#include <string>

namespace spire::counters {

CounterSet CounterSet::since(const CounterSet& earlier) const {
  CounterSet out;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    if (counts_[i] < earlier.counts_[i]) {
      throw std::logic_error(
          "counter went backwards: " +
          std::string(event_name(static_cast<Event>(i))));
    }
    out.counts_[i] = counts_[i] - earlier.counts_[i];
  }
  return out;
}

}  // namespace spire::counters
