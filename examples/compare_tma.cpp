// SPIRE vs Top-Down Analysis, side by side (the paper's §V validation).
//
// For each of the four test workloads this prints VTune-style TMA level-1/2
// fractions next to SPIRE's metric ranking, so you can see how the two
// methods attribute the same execution.
//
// Build and run:  ./build/examples/compare_tma
#include <cstdio>
#include <string>

#include "sampling/collector.h"
#include "sim/core.h"
#include "spire/analyzer.h"
#include "spire/ensemble.h"
#include "tma/tma.h"
#include "workloads/profile_stream.h"
#include "workloads/suite.h"

using namespace spire;

int main() {
  // Train on the full 23-workload training suite.
  sampling::Dataset training;
  sampling::SampleCollector collector{sampling::CollectorConfig{}};
  std::printf("training on 23 workloads...\n");
  for (const auto& entry : workloads::training_workloads()) {
    workloads::ProfileStream stream(entry.profile);
    sim::Core core(sim::CoreConfig{}, stream);
    collector.collect(core, training, 4'000'000);
  }
  const auto ensemble = model::Ensemble::train(training);
  model::Analyzer analyzer(ensemble);

  for (const auto& entry : workloads::testing_workloads()) {
    workloads::ProfileStream stream(entry.profile);
    sim::Core core(sim::CoreConfig{}, stream);
    sampling::Dataset samples;
    const auto before = core.counters();
    collector.collect(core, samples, 5'000'000);
    const auto tma_result = tma::analyze(core.counters().since(before));
    const auto analysis = analyzer.analyze(samples);

    std::printf("\n================ %s / %s ================\n",
                entry.profile.name.c_str(), entry.profile.config.c_str());
    std::printf("--- VTune-style TMA ---\n%s", tma_result.describe().c_str());
    std::printf("TMA main bottleneck:   %s\n",
                std::string(counters::tma_area_name(tma_result.main_bottleneck()))
                    .c_str());

    std::printf("--- SPIRE ---\n");
    std::printf("measured IPC %.3f, estimated max %.3f\n",
                analysis.measured_throughput, analysis.estimated_throughput);
    for (std::size_t i = 0; i < 10 && i < analysis.ranking.size(); ++i) {
      const auto& r = analysis.ranking[i];
      std::printf("  %5.2f  %-5s %-48s [%s]\n", r.p_bar,
                  std::string(r.abbrev.empty() ? "-" : r.abbrev).c_str(),
                  std::string(r.name).c_str(),
                  std::string(counters::tma_area_name(r.area)).c_str());
    }
    const auto spire_area = model::Analyzer::dominant_area(analysis);
    const auto tma_area = tma_result.main_bottleneck();
    const int hits = model::Analyzer::area_count_in_top(analysis, tma_area);
    std::printf("SPIRE dominant area:   %s\n",
                std::string(counters::tma_area_name(spire_area)).c_str());
    std::printf("top-10 metrics in TMA's main area (%s): %d/10 -> %s\n",
                std::string(counters::tma_area_name(tma_area)).c_str(), hits,
                hits > 0 ? "SPIRE surfaces the same bottleneck"
                         : "no overlap");
  }
  return 0;
}
