// Bottleneck hunt: iteratively tune a workload using SPIRE's ranking.
//
// This example mimics how a performance engineer would use SPIRE: start
// from a slow configuration, look at the lowest-estimate metrics, apply
// the matching "optimization" (here: changing the workload profile, as a
// stand-in for a code change), and repeat. Three rounds of fixes guided by
// the ranking lift IPC substantially.
//
// Build and run:  ./build/examples/bottleneck_hunt
#include <cstdio>
#include <string>

#include "sampling/collector.h"
#include "sim/core.h"
#include "spire/analyzer.h"
#include "spire/ensemble.h"
#include "workloads/profile_stream.h"
#include "workloads/suite.h"

using namespace spire;

namespace {

model::Ensemble train_on_suite() {
  sampling::Dataset training;
  sampling::SampleCollector collector{sampling::CollectorConfig{}};
  for (const auto& entry : workloads::training_workloads()) {
    auto profile = entry.profile;
    profile.instruction_count = 400'000;  // quick demo-scale training
    workloads::ProfileStream stream(profile);
    sim::Core core(sim::CoreConfig{}, stream);
    collector.collect(core, training, 1'500'000);
  }
  return model::Ensemble::train(training);
}

model::Analyzer::Analysis analyze(const model::Ensemble& ensemble,
                                  const workloads::WorkloadProfile& profile) {
  workloads::ProfileStream stream(profile);
  sim::Core core(sim::CoreConfig{}, stream);
  sampling::SampleCollector collector{sampling::CollectorConfig{}};
  sampling::Dataset samples;
  collector.collect(core, samples, 4'000'000);
  return model::Analyzer(ensemble).analyze(samples);
}

void report(const char* stage, const model::Analyzer::Analysis& analysis) {
  std::printf("\n== %s: measured IPC %.3f ==\n", stage,
              analysis.measured_throughput);
  for (std::size_t i = 0; i < 5 && i < analysis.ranking.size(); ++i) {
    const auto& r = analysis.ranking[i];
    std::printf("  %.3f  %-48s [%s]\n", r.p_bar, std::string(r.name).c_str(),
                std::string(counters::tma_area_name(r.area)).c_str());
  }
}

}  // namespace

int main() {
  std::printf("training SPIRE on the 23-workload suite (demo scale)...\n");
  const auto ensemble = train_on_suite();
  std::printf("trained %zu rooflines\n", ensemble.metric_count());

  // A deliberately awful workload: huge code footprint (front-end bound),
  // random branches (bad speculation), DRAM-sized working set (memory
  // bound) and a serial dependency chain (core bound).
  workloads::WorkloadProfile p;
  p.name = "hot-loop";
  p.instruction_count = 800'000;
  p.code_footprint_bytes = 256 * 1024;
  p.branch_fraction = 0.2;
  p.branch_entropy = 0.7;
  p.load_fraction = 0.3;
  p.data_working_set_bytes = 64ull << 20;
  p.mem_pattern = workloads::MemPattern::kRandom;
  p.dep_fraction = 0.5;
  p.dep_chain = 1;
  p.seed = 1234;

  auto analysis = analyze(ensemble, p);
  report("baseline", analysis);

  // Round 1: the ranking flags front-end / DSB metrics -> "shrink the hot
  // code" (outlining cold paths, PGO, etc.).
  p.code_footprint_bytes = 8 * 1024;
  analysis = analyze(ensemble, p);
  report("after shrinking hot code", analysis);

  // Round 2: branch metrics dominate -> "make branches predictable"
  // (sorting inputs / branchless rewrites).
  p.branch_entropy = 0.02;
  analysis = analyze(ensemble, p);
  report("after removing data-dependent branches", analysis);

  // Round 3: memory metrics dominate -> "block the working set"
  // (cache-aware tiling turns random DRAM traffic into L2 hits).
  p.data_working_set_bytes = 512 * 1024;
  p.mem_pattern = workloads::MemPattern::kSequential;
  analysis = analyze(ensemble, p);
  report("after cache blocking", analysis);

  std::printf("\ndone: the ranking guided three targeted fixes.\n");
  return 0;
}
