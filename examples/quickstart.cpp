// Quickstart: the SPIRE workflow in ~60 lines.
//
// 1. Run a workload on the simulated core and collect counter samples.
// 2. Train a SPIRE ensemble on those samples.
// 3. Analyze a new workload: estimate its attainable IPC and rank the
//    performance metrics most likely to be its bottleneck.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "sampling/collector.h"
#include "sim/core.h"
#include "spire/analyzer.h"
#include "spire/ensemble.h"
#include "workloads/profile_stream.h"
#include "workloads/suite.h"

int main() {
  using namespace spire;

  // --- 1. Collect training samples from a few workloads -----------------
  sampling::Dataset training;
  sampling::SampleCollector collector{sampling::CollectorConfig{}};  // default: every metric event
  for (const char* name : {"tensorflow-lite", "graph500", "numenta-nab",
                           "qmcpack", "mafft", "parboil"}) {
    for (const auto& entry : workloads::hpc_suite()) {
      if (entry.profile.name != name || entry.testing) continue;
      workloads::ProfileStream stream(entry.profile);
      sim::Core core(sim::CoreConfig{}, stream);
      const auto stats = collector.collect(core, training, 3'000'000);
      std::printf("collected %-16s %-20s  %6llu samples, IPC %.2f\n",
                  entry.profile.name.c_str(), entry.profile.config.c_str(),
                  static_cast<unsigned long long>(stats.samples),
                  static_cast<double>(stats.instructions) /
                      static_cast<double>(stats.measured_cycles));
    }
  }

  // --- 2. Train the ensemble: one roofline model per metric --------------
  const auto ensemble = model::Ensemble::train(training);
  std::printf("\ntrained a SPIRE ensemble with %zu metric rooflines\n\n",
              ensemble.metric_count());

  // --- 3. Analyze an unseen workload -------------------------------------
  const auto& test = workloads::find_workload("onnx", "T5 Encoder, Std.");
  workloads::ProfileStream stream(test.profile);
  sim::Core core(sim::CoreConfig{}, stream);
  sampling::Dataset samples;
  collector.collect(core, samples, 3'000'000);

  model::Analyzer analyzer(ensemble);
  const auto analysis = analyzer.analyze(samples);

  std::printf("workload: %s / %s\n", test.profile.name.c_str(),
              test.profile.config.c_str());
  std::printf("measured IPC:  %.3f\n", analysis.measured_throughput);
  std::printf("estimated max: %.3f\n\n", analysis.estimated_throughput);
  std::printf("top bottleneck candidates (lowest estimates first):\n");
  for (std::size_t i = 0; i < 5 && i < analysis.ranking.size(); ++i) {
    const auto& r = analysis.ranking[i];
    std::printf("  %zu. %-48s  P = %.3f  [%s]\n", i + 1,
                std::string(r.name).c_str(), r.p_bar,
                std::string(counters::tma_area_name(r.area)).c_str());
  }
  return 0;
}
