// Bring your own counter data: SPIRE on a hand-written CSV.
//
// SPIRE is architecture-agnostic — it only needs (T, W, M_x) triples. This
// example builds a dataset from inline CSV text (the same format
// Dataset::save_csv writes, i.e. what you would produce from `perf stat`
// logs on real hardware), trains a model, saves it to disk, reloads it, and
// analyzes a second CSV of "production" samples.
//
// Build and run:  ./build/examples/custom_counters
#include <cstdio>
#include <sstream>
#include <string>

#include "sampling/dataset.h"
#include "spire/analyzer.h"
#include "spire/ensemble.h"
#include "spire/model_io.h"

using namespace spire;

namespace {

// Synthetic "perf stat" export: three metrics, ten 2-second windows each.
// t is in cycles, w in instructions, m in metric events.
constexpr const char* kTrainingCsv = R"(metric,t,w,m
br_misp_retired.all_branches,1000,3900,2
br_misp_retired.all_branches,1000,3500,10
br_misp_retired.all_branches,1000,3000,40
br_misp_retired.all_branches,1000,2200,110
br_misp_retired.all_branches,1000,1500,160
br_misp_retired.all_branches,1000,900,170
br_misp_retired.all_branches,1000,600,150
br_misp_retired.all_branches,1000,2800,60
br_misp_retired.all_branches,1000,1100,150
br_misp_retired.all_branches,1000,3700,6
longest_lat_cache.miss,1000,3900,1
longest_lat_cache.miss,1000,3600,8
longest_lat_cache.miss,1000,2900,30
longest_lat_cache.miss,1000,2000,90
longest_lat_cache.miss,1000,1200,150
longest_lat_cache.miss,1000,700,180
longest_lat_cache.miss,1000,400,190
longest_lat_cache.miss,1000,2500,50
longest_lat_cache.miss,1000,1000,160
longest_lat_cache.miss,1000,3800,3
cycle_activity.stalls_total,1000,3900,80
cycle_activity.stalls_total,1000,3400,220
cycle_activity.stalls_total,1000,2800,420
cycle_activity.stalls_total,1000,2000,600
cycle_activity.stalls_total,1000,1300,760
cycle_activity.stalls_total,1000,800,860
cycle_activity.stalls_total,1000,500,920
cycle_activity.stalls_total,1000,2400,500
cycle_activity.stalls_total,1000,1000,820
cycle_activity.stalls_total,1000,3700,140
)";

// The workload to diagnose: healthy branch behaviour, healthy cache
// behaviour, but stalls everywhere - a core-bound profile.
constexpr const char* kProductionCsv = R"(metric,t,w,m
br_misp_retired.all_branches,1000,1000,3
br_misp_retired.all_branches,1000,1050,4
longest_lat_cache.miss,1000,1000,5
longest_lat_cache.miss,1000,1050,4
cycle_activity.stalls_total,1000,1000,800
cycle_activity.stalls_total,1000,1050,790
)";

}  // namespace

int main() {
  // Load the "collected on real hardware" training data.
  std::istringstream training_csv(kTrainingCsv);
  const auto training = sampling::Dataset::load_csv(training_csv);
  std::printf("loaded %zu training samples over %zu metrics\n",
              training.size(), training.metrics().size());

  model::Ensemble::TrainOptions options;
  options.min_samples = 5;
  const auto ensemble = model::Ensemble::train(training, options);

  // Persist and reload, as a deployment would.
  const std::string path = "/tmp/spire_custom_model.txt";
  model::save_model_file(ensemble, path);
  const auto deployed = model::load_model_file(path);
  std::printf("model saved to %s and reloaded (%zu rooflines)\n\n",
              path.c_str(), deployed.metric_count());

  // Analyze the production capture.
  std::istringstream production_csv(kProductionCsv);
  const auto production = sampling::Dataset::load_csv(production_csv);
  const auto analysis = model::Analyzer(deployed).analyze(production);

  std::printf("production workload: measured IPC %.2f, estimated max %.2f\n",
              analysis.measured_throughput, analysis.estimated_throughput);
  std::printf("metric ranking (lowest = likeliest bottleneck):\n");
  for (const auto& r : analysis.ranking) {
    std::printf("  %5.2f  %-34s [%s]\n", r.p_bar, std::string(r.name).c_str(),
                std::string(counters::tma_area_name(r.area)).c_str());
  }
  std::printf(
      "\nexpected: cycle_activity.stalls_total ranks first (the workload\n"
      "stalls constantly while branches and caches behave), pointing the\n"
      "investigation at the core/back-end rather than memory or\n"
      "speculation.\n");
  return 0;
}
